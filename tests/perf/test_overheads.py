"""Tests for static overhead accounting (table T2)."""

import pytest

from repro.perf import decoder_multiplier_proxy, overhead_row, transferred_bits_per_read
from repro.schemes import ConventionalIecc, Duo, NoEcc, PairScheme, Xed, default_schemes


class TestTransfer:
    def test_duo_pays_extra_beat(self):
        duo = Duo()
        base = duo.rank.chips * duo.rank.device.access_data_bits
        assert transferred_bits_per_read(duo) == base + duo.rank.chips * 8

    def test_pair_transfers_no_redundancy(self):
        pair = PairScheme()
        assert transferred_bits_per_read(pair) == 4 * 128

    def test_xed_transfers_parity_chip(self):
        assert transferred_bits_per_read(Xed()) == 5 * 128


class TestDecoderProxy:
    def test_binary_codes_free(self):
        assert decoder_multiplier_proxy(ConventionalIecc()) == 0
        assert decoder_multiplier_proxy(NoEcc()) == 0

    def test_pair_counts_parallel_pin_decoders(self):
        pair = PairScheme()
        per = 3 * pair.code.t + (pair.code.n - pair.code.k)
        assert decoder_multiplier_proxy(pair) == per * 8

    def test_duo_single_decoder(self):
        duo = Duo()
        assert decoder_multiplier_proxy(duo) == 3 * 6 + 12


class TestRows:
    def test_every_scheme_has_a_row(self):
        for scheme in default_schemes():
            row = overhead_row(scheme)
            assert row["scheme"] == scheme.name
            assert row["storage_overhead_pct"] >= 0
            assert row["bits_per_read"] > 0

    def test_pair_storage_slightly_above_iecc(self):
        pair_row = overhead_row(PairScheme())
        iecc_row = overhead_row(ConventionalIecc())
        assert pair_row["storage_overhead_pct"] == pytest.approx(6.67, abs=0.01)
        assert iecc_row["storage_overhead_pct"] == pytest.approx(6.25, abs=0.01)
