"""Tests for the all-bank refresh model in the controller."""

import pytest

from repro.dram import AddressMapper, RANK_X8_5CHIP, SchemeTimingOverlay
from repro.perf import ControllerConfig, MemoryController, TraceConfig, generate_trace, simulate

NONE = SchemeTimingOverlay()


def long_trace(requests=6000, rate=0.05, seed=1, locality=0.6):
    mapper = AddressMapper(RANK_X8_5CHIP)
    cfg = TraceConfig(
        requests=requests, arrival_rate=rate, seed=seed, row_locality=locality,
    )
    return generate_trace(cfg, mapper)


class TestRefresh:
    def test_disabled_by_default(self):
        controller = MemoryController(ControllerConfig(), NONE)
        controller.run(long_trace(2000))
        assert controller.refreshes == 0

    def test_refreshes_fire_at_trefi_cadence(self):
        config = ControllerConfig(refresh=True)
        controller = MemoryController(config, NONE)
        _, makespan = controller.run(long_trace())
        expected = makespan / config.timing.tREFI
        assert controller.refreshes == pytest.approx(expected, rel=0.15)

    def test_refresh_costs_throughput(self):
        # a saturating stream: refresh windows genuinely stall service
        trace = long_trace(rate=0.13, locality=0.95)
        base = simulate(trace, NONE, "none", "w", config=ControllerConfig())
        refreshed = simulate(trace, NONE, "none", "w", config=ControllerConfig(refresh=True))
        assert refreshed.throughput < base.throughput
        # tRFC/tREFI ~ 7.5%: the penalty must be in that ballpark, not 50%
        assert refreshed.throughput > base.throughput * 0.85

    def test_refresh_closes_rows(self):
        config = ControllerConfig(refresh=True)
        controller = MemoryController(config, NONE)
        controller.run(long_trace(4000, rate=0.02))
        # after enough refreshes every surviving open row was re-opened
        assert controller.refreshes > 0
