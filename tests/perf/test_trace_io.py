"""Tests for trace file I/O."""

import pytest

from repro.dram import AddressMapper, RANK_X8_5CHIP
from repro.perf import TraceConfig, generate_trace, load_trace, save_trace, simulate
from repro.schemes import PairScheme


class TestRoundtrip:
    def test_save_load_identity(self, tmp_path):
        mapper = AddressMapper(RANK_X8_5CHIP)
        trace = generate_trace(TraceConfig(requests=200, seed=1), mapper)
        path = tmp_path / "trace.txt"
        written = save_trace(path, trace)
        loaded = load_trace(path)
        assert written == len(loaded) == 200
        for a, b in zip(trace, loaded):
            assert a.address == b.address
            assert a.is_write == b.is_write
            assert a.is_masked == b.is_masked
            assert a.arrival == pytest.approx(b.arrival, abs=1e-3)

    def test_loaded_trace_simulates(self, tmp_path):
        mapper = AddressMapper(RANK_X8_5CHIP)
        trace = generate_trace(TraceConfig(requests=300, seed=2), mapper)
        path = tmp_path / "trace.txt"
        save_trace(path, trace)
        result = simulate(load_trace(path), PairScheme().timing_overlay, "pair", "file")
        assert result.requests == 300

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n10.0 0 5 3 R\n20.0 1 6 4 M  # inline\n")
        loaded = load_trace(path)
        assert len(loaded) == 2
        assert loaded[1].is_masked

    def test_sorts_by_arrival(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("20.0 0 0 0 R\n10.0 0 0 1 W\n")
        loaded = load_trace(path)
        assert loaded[0].arrival == 10.0


class TestValidation:
    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("10.0 0 5 R\n")
        with pytest.raises(ValueError, match="5 fields"):
            load_trace(path)

    def test_unknown_op(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("10.0 0 5 3 X\n")
        with pytest.raises(ValueError, match="unknown op"):
            load_trace(path)
