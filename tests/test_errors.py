"""Error taxonomy and the tally numerical guard."""

import pytest

from repro.errors import (
    CampaignAborted,
    CampaignError,
    ChunkFailure,
    ChunkTimeout,
    EngineMismatch,
    NumericalGuard,
    guard_tally,
)


class TestTaxonomy:
    def test_all_subtypes_are_campaign_errors(self):
        for exc_type in (ChunkFailure, ChunkTimeout, EngineMismatch,
                         NumericalGuard, CampaignAborted):
            assert issubclass(exc_type, CampaignError)
        assert issubclass(CampaignError, RuntimeError)

    def test_chunk_failure_carries_id_and_seed(self):
        exc = ChunkFailure("chunk 3 died", chunk_id=3, seed=1009)
        assert exc.chunk_id == 3
        assert exc.seed == 1009

    def test_chunk_timeout_carries_budget(self):
        exc = ChunkTimeout("too slow", chunk_id=1, seconds=2.5)
        assert exc.chunk_id == 1
        assert exc.seconds == 2.5

    def test_engine_mismatch_carries_fingerprints(self):
        exc = EngineMismatch("nope", expected="aaa", got="bbb")
        assert exc.expected == "aaa" and exc.got == "bbb"


class TestGuardTally:
    def test_valid_counts_pass(self):
        guard_tally((10, 2, 1, 0), expected_total=13)

    def test_negative_count_rejected(self):
        with pytest.raises(NumericalGuard, match="negative"):
            guard_tally((10, 2, 1, -1))

    def test_nan_rejected(self):
        with pytest.raises(NumericalGuard, match="NaN"):
            guard_tally((float("nan"), 0, 0, 0))

    def test_non_integral_rejected(self):
        with pytest.raises(NumericalGuard, match="not integral"):
            guard_tally((1.5, 0, 0, 0))

    def test_integral_float_accepted(self):
        guard_tally((10.0, 0, 0, 0), expected_total=10)

    def test_total_mismatch_rejected(self):
        with pytest.raises(NumericalGuard, match="expected 20 trials"):
            guard_tally((10, 2, 1, 0), expected_total=20)

    def test_wrong_arity_rejected(self):
        with pytest.raises(NumericalGuard, match="expected 4"):
            guard_tally((1, 2, 3))

    def test_context_in_message(self):
        with pytest.raises(NumericalGuard, match="chunk 7"):
            guard_tally((0, 0, 0, -2), context="chunk 7")
