"""Tests for GF(2) linear algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.galois import linalg2


def gf2_matrices(max_dim=8):
    return st.tuples(
        st.integers(2, max_dim), st.integers(2, max_dim), st.integers(0, 2**31 - 1)
    ).map(
        lambda t: np.random.default_rng(t[2]).integers(0, 2, (t[0], t[1])).astype(np.uint8)
    )


class TestRref:
    def test_identity_is_fixed_point(self):
        eye = linalg2.identity(4)
        reduced, pivots = linalg2.rref(eye)
        assert np.array_equal(reduced, eye)
        assert pivots == [0, 1, 2, 3]

    def test_zero_matrix(self):
        reduced, pivots = linalg2.rref(np.zeros((3, 4), dtype=np.uint8))
        assert pivots == []
        assert not reduced.any()

    def test_known_rank(self):
        m = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.uint8)
        # third row = row0 + row1 over GF(2)
        assert linalg2.rank(m) == 2

    @given(gf2_matrices())
    @settings(max_examples=80, deadline=None)
    def test_rank_bounded(self, m):
        r = linalg2.rank(m)
        assert 0 <= r <= min(m.shape)


class TestNullSpace:
    @given(gf2_matrices())
    @settings(max_examples=80, deadline=None)
    def test_null_space_vectors_annihilate(self, m):
        basis = linalg2.null_space(m)
        assert basis.shape[0] == m.shape[1] - linalg2.rank(m)
        for v in basis:
            assert not linalg2.matvec(m, v).any()

    def test_null_space_of_identity_is_empty(self):
        assert linalg2.null_space(linalg2.identity(5)).shape[0] == 0


class TestSolve:
    @given(gf2_matrices())
    @settings(max_examples=80, deadline=None)
    def test_solve_consistent_systems(self, m):
        rng = np.random.default_rng(int(m.sum()) + 1)
        x_true = rng.integers(0, 2, m.shape[1]).astype(np.uint8)
        b = linalg2.matvec(m, x_true)
        x = linalg2.solve(m, b)
        assert x is not None
        assert np.array_equal(linalg2.matvec(m, x), b)

    def test_solve_infeasible_returns_none(self):
        m = np.array([[1, 0], [1, 0]], dtype=np.uint8)
        b = np.array([1, 0], dtype=np.uint8)
        assert linalg2.solve(m, b) is None


class TestMatmul:
    def test_matmul_mod2(self):
        a = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        assert np.array_equal(linalg2.matmul(a, a), [[1, 0], [0, 1]])

    def test_is_in_span(self):
        basis = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        assert linalg2.is_in_span(basis, np.array([1, 1, 0]))
        assert not linalg2.is_in_span(basis, np.array([1, 1, 1]))
