"""Unit and property tests for GF(2^m) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.galois import GF256, GF2m, PRIMITIVE_POLYNOMIALS, get_field


class TestConstruction:
    def test_all_default_fields_construct(self):
        for m in PRIMITIVE_POLYNOMIALS:
            field = GF2m(m)
            assert field.order == 1 << m

    def test_rejects_wrong_degree_polynomial(self):
        with pytest.raises(ValueError):
            GF2m(8, primitive_poly=0b1011)  # degree 3 polynomial for m=8

    def test_rejects_non_primitive_polynomial(self):
        # x^8 + 1 is not even irreducible
        with pytest.raises(ValueError):
            GF2m(8, primitive_poly=0x101)

    def test_rejects_out_of_range_m(self):
        with pytest.raises(ValueError):
            GF2m(1)
        with pytest.raises(ValueError):
            GF2m(17)

    def test_get_field_caches(self):
        assert get_field(8) is get_field(8)

    def test_equality_and_hash(self):
        assert GF2m(4) == get_field(4)
        assert hash(GF2m(4)) == hash(get_field(4))
        assert GF2m(4) != GF2m(5)


class TestScalarArithmetic:
    def test_add_is_xor(self):
        assert GF256.add(0x53, 0xCA) == 0x53 ^ 0xCA

    def test_known_product_gf256(self):
        # standard AES-field style check for poly 0x11D
        assert GF256.mul(2, 128) == 0x11D ^ 0x100

    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert GF256.mul(a, 1) == a
            assert GF256.mul(a, 0) == 0

    def test_inverse_all_elements(self):
        for a in range(1, 256):
            assert GF256.mul(a, GF256.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_division(self):
        for a in (1, 7, 200, 255):
            for b in (1, 3, 99):
                assert GF256.mul(GF256.div(a, b), b) == a

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)

    def test_pow_matches_repeated_mul(self):
        a = 37
        acc = 1
        for e in range(10):
            assert GF256.pow(a, e) == acc
            acc = GF256.mul(acc, a)

    def test_pow_negative_exponent(self):
        a = 123
        assert GF256.mul(GF256.pow(a, -1), a) == 1

    def test_pow_zero_base(self):
        assert GF256.pow(0, 0) == 1
        assert GF256.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            GF256.pow(0, -1)

    def test_alpha_pow_wraps(self):
        assert GF256.alpha_pow(0) == 1
        assert GF256.alpha_pow(255) == 1  # alpha^(q-1) = 1
        assert GF256.alpha_pow(-1) == GF256.alpha_pow(254)

    def test_log_inverse_of_alpha_pow(self):
        for e in (0, 1, 17, 254):
            assert GF256.log(GF256.alpha_pow(e)) == e

    def test_log_of_zero_raises(self):
        with pytest.raises(ValueError):
            GF256.log(0)

    def test_multiplicative_order_of_alpha(self):
        """alpha must generate the whole multiplicative group."""
        field = get_field(6)
        seen = set()
        for e in range(field.order - 1):
            seen.add(field.alpha_pow(e))
        assert len(seen) == field.order - 1


elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elements, elements, elements)
    @settings(max_examples=200)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(elements, elements)
    @settings(max_examples=200)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elements, elements, elements)
    @settings(max_examples=200)
    def test_distributive(self, a, b, c):
        assert GF256.mul(a, b ^ c) == GF256.mul(a, b) ^ GF256.mul(a, c)

    @given(nonzero, nonzero)
    @settings(max_examples=100)
    def test_no_zero_divisors(self, a, b):
        assert GF256.mul(a, b) != 0


class TestVectorised:
    def test_mul_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 300)
        b = rng.integers(0, 256, 300)
        out = GF256.mul(a, b)
        for i in range(300):
            assert out[i] == GF256.mul(int(a[i]), int(b[i]))

    def test_div_matches_scalar(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, 200)
        b = rng.integers(1, 256, 200)
        out = GF256.div(a, b)
        for i in range(200):
            assert out[i] == GF256.div(int(a[i]), int(b[i]))

    def test_div_by_zero_array_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(np.array([1, 2]), np.array([1, 0]))

    def test_inv_array(self):
        a = np.arange(1, 256)
        assert np.all(GF256.mul(GF256.inv(a), a) == 1)

    def test_pow_array(self):
        a = np.arange(256)
        out = GF256.pow(a, 3)
        for i in range(256):
            assert out[i] == GF256.pow(int(i), 3)

    def test_bits_roundtrip(self):
        rng = np.random.default_rng(2)
        syms = rng.integers(0, 256, 64)
        bits = GF256.to_bits(syms)
        assert bits.shape == (64, 8)
        assert np.array_equal(GF256.from_bits(bits), syms)
