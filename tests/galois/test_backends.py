"""Backend registry semantics and cross-tier bit-identity.

The whole premise of the kernel-backend registry is that backend choice is
a *performance* knob, never a *results* knob.  This suite enforces it from
three directions:

* registry behaviour: selection priority (explicit API > ``REPRO_GF_BACKEND``
  env var > default), strict explicit selection vs lenient env/worker
  resolution, the forced-fallback path when a requested tier is absent;
* bit-identity: a hypothesis sweep over ``(m, n, r, fcr)`` and fault
  patterns asserting every registered backend returns exactly the numpy
  reference's syndromes, plus decode-outcome equivalence through the full
  RS decoder and through the reliability chunk executors;
* cache hygiene: ``galois.batch.clear_cache`` must drop the backend-held
  plane/Chien tables, not just the shared Vandermonde cache.

The pure-python fallback body of the numba accumulate loop is exercised
here directly (on tiny inputs), so the jitted tier's *algorithm* is proven
bit-identical even on hosts where numba itself is absent.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.galois import batch, get_field
from repro.galois import backends as reg
from repro.galois.backends import (
    BackendUnavailableError,
    BitslicedBackend,
    NumpyBackend,
    active_backend,
    backend_names,
    backends_report,
    get_backend,
    set_backend,
    use_backend,
)
from repro.galois.backends.numba_backend import (
    NUMBA_AVAILABLE,
    NumbaBackend,
    _accumulate_jit,
)


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Each test starts from env-driven resolution with no env var set."""
    monkeypatch.delenv(reg.ENV_VAR, raising=False)
    reg.reset_selection()
    yield
    reg.reset_selection()


def all_available():
    return [get_backend(name) for name in backend_names()
            if name in reg._REGISTRY]


# -- registry semantics ------------------------------------------------------


class TestRegistry:
    def test_default_is_numpy(self):
        assert active_backend().name == "numpy"

    def test_known_names(self):
        # all three tiers are always *known*, even where numba is missing
        assert set(backend_names()) == {"numpy", "bitsliced", "numba"}

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(reg.ENV_VAR, "bitsliced")
        reg.reset_selection()
        assert active_backend().name == "bitsliced"

    def test_env_var_read_lazily(self, monkeypatch):
        assert active_backend().name == "numpy"
        monkeypatch.setenv(reg.ENV_VAR, "bitsliced")
        # selection is sticky until reset
        assert active_backend().name == "numpy"
        reg.reset_selection()
        assert active_backend().name == "bitsliced"

    def test_unknown_env_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(reg.ENV_VAR, "cuda")
        reg.reset_selection()
        with pytest.warns(RuntimeWarning, match="unknown GF backend 'cuda'"):
            assert active_backend().name == "numpy"

    def test_set_backend_strict_on_unknown(self):
        with pytest.raises(ValueError, match="unknown GF backend"):
            set_backend("cuda")

    def test_set_backend_explicit_and_auto(self):
        assert set_backend("bitsliced").name == "bitsliced"
        assert active_backend().name == "bitsliced"
        assert set_backend(None).name == "numpy"  # back to env/default

    def test_use_backend_scopes_and_restores(self):
        set_backend("numpy")
        with use_backend("bitsliced") as b:
            assert b.name == "bitsliced"
            assert active_backend().name == "bitsliced"
        assert active_backend().name == "numpy"

    def test_use_backend_none_is_passthrough(self):
        with use_backend(None) as b:
            assert b is active_backend()

    def test_use_backend_strict_raises(self):
        with pytest.raises(ValueError):
            with use_backend("cuda"):
                pass  # pragma: no cover - never reached

    def test_report_schema_and_active_flag(self):
        report = backends_report()
        assert report["kind"] == "gf_backends"
        assert report["default"] == "numpy"
        actives = [row["name"] for row in report["backends"] if row["active"]]
        assert actives == [report["active"]] == ["numpy"]
        by_name = {row["name"]: row for row in report["backends"]}
        assert by_name["numpy"]["available"] is True
        assert by_name["bitsliced"]["available"] is True


class TestForcedFallback:
    """Selecting the numba tier where numba is absent must degrade, not die."""

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_env_selection_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv(reg.ENV_VAR, "numba")
        reg.reset_selection()
        with pytest.warns(RuntimeWarning, match="'numba' is unavailable"):
            assert active_backend().name == "numpy"

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_explicit_selection_raises(self):
        with pytest.raises(BackendUnavailableError, match="numba"):
            set_backend("numba")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_worker_mode_use_backend_is_lenient(self):
        with pytest.warns(RuntimeWarning):
            with use_backend("numba", strict=False) as b:
                assert b.name == "numpy"

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_report_carries_reason(self):
        row = {r["name"]: r for r in backends_report()["backends"]}["numba"]
        assert row["available"] is False
        assert "numba" in row["reason"]


# -- bit-identity ------------------------------------------------------------


SHAPES = st.sampled_from([
    # (m, n, r, fcr): spans sub-byte, byte and two-byte symbol fields,
    # full-length and shortened codes, and both common fcr conventions.
    (4, 15, 6, 1),
    (4, 9, 4, 0),
    (8, 255, 16, 1),
    (8, 40, 8, 0),
    (8, 17, 5, 1),
    (10, 100, 10, 1),
    (16, 120, 8, 1),
])


@st.composite
def syndrome_cases(draw):
    m, n, r, fcr = draw(SHAPES)
    field = get_field(m)
    batch_rows = draw(st.integers(min_value=1, max_value=80))
    words = np.zeros((batch_rows, n), dtype=np.int64)
    kind = draw(st.sampled_from(["clean", "sparse", "dense", "mixed"]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if kind != "clean":
        for i in range(batch_rows):
            if kind == "sparse" or (kind == "mixed" and i % 3 == 0):
                errs = int(rng.integers(0, min(4, n) + 1))
                pos = rng.choice(n, size=errs, replace=False)
                words[i, pos] = rng.integers(1, field.order, size=errs)
            elif kind == "dense" or i % 3 == 1:
                words[i] = rng.integers(0, field.order, size=n)
    return field, words, r, fcr


@given(syndrome_cases())
@settings(max_examples=60, deadline=None)
def test_syndrome_bit_identity_across_backends(case):
    field, words, r, fcr = case
    reference = NumpyBackend().syndromes(field, words, r, fcr)
    for backend in all_available():
        got = backend.syndromes(field, words, r, fcr, chunk=17)  # odd chunk
        assert got.dtype == reference.dtype
        assert np.array_equal(got, reference), backend.name


@given(syndrome_cases())
@settings(max_examples=30, deadline=None)
def test_numba_algorithm_bit_identity_via_python_fallback(case):
    """Prove the jitted tier's scan order is exact even without numba.

    ``_accumulate_jit`` is a plain-python loop unless numba wrapped it at
    import; driving a NumbaBackend instance directly therefore exercises
    the identical accumulate algorithm on every host.
    """
    field, words, r, fcr = case
    if words.shape[0] > 8:  # the python loop is slow; keep lanes small
        words = words[:8]
    reference = NumpyBackend().syndromes(field, words, r, fcr)
    got = NumbaBackend().syndromes(field, words, r, fcr)
    assert np.array_equal(got, reference)


def test_numba_accumulate_is_pure_python_when_absent():
    if not NUMBA_AVAILABLE:
        assert not hasattr(_accumulate_jit, "py_func")  # not jitted


def test_chien_roots_identical_across_backends():
    field = get_field(8)
    rng = np.random.default_rng(7)
    reference = NumpyBackend()
    for _ in range(16):
        degree = int(rng.integers(1, 9))
        psi = [1] + [int(v) for v in rng.integers(0, 256, size=degree)]
        for n in (255, 100, 17):
            ref = reference.chien_roots(field, n, psi)
            for backend in all_available():
                got = backend.chien_roots(field, n, psi)
                assert np.array_equal(got, ref), (backend.name, n, psi)


@pytest.mark.parametrize("backend_name",
                         [n for n in ("bitsliced", "numba") if n in reg._REGISTRY])
def test_decode_outcomes_identical(backend_name):
    """Full decoder equivalence: status, data, positions per word."""
    from repro.codes import SinglyExtendedRS

    field = get_field(8)
    code = SinglyExtendedRS(field, 64, 48)
    rng = np.random.default_rng(0xDEC0)
    words = np.zeros((48, code.n), dtype=np.int64)
    for i in range(words.shape[0]):
        word = code.encode(rng.integers(0, 256, size=code.k, dtype=np.int64))
        n_err = int(rng.integers(0, code.t + 4))  # includes beyond-bound rows
        if n_err:
            pos = rng.choice(code.n, size=n_err, replace=False)
            word[pos] ^= rng.integers(1, 256, size=n_err)
        words[i] = word
    set_backend("numpy")
    reference = code.decode_batch(words)
    with use_backend(backend_name):
        got = code.decode_batch(words)
    assert len(got) == len(reference)
    for ours, ref in zip(got, reference):
        assert ours.status is ref.status
        assert ours.corrected_positions == ref.corrected_positions
        assert np.array_equal(ours.data, ref.data)


@pytest.mark.parametrize("backend_name",
                         [n for n in ("bitsliced", "numba") if n in reg._REGISTRY])
def test_reliability_chunk_tally_identical(backend_name):
    """The campaign-facing executors give identical tallies per backend."""
    from repro.campaign.plan import build_plan, execute_chunk
    from repro.faults import DEFAULT_RATES
    from repro.reliability import ExactRunConfig
    from repro.schemes import default_schemes

    scheme = next(s for s in default_schemes() if s.name == "pair")
    rates = DEFAULT_RATES.with_ber(1e-3)
    config = ExactRunConfig(trials=24, seed=5)
    plan = build_plan(scheme, rates, config, chunk_trials=8)
    for spec in plan.chunks:
        ref = execute_chunk("iid", scheme, rates, config, spec, backend="numpy")
        got = execute_chunk("iid", scheme, rates, config, spec, backend=backend_name)
        assert got == ref


def test_unavailable_backend_in_chunk_degrades_not_dies():
    """A worker handed a bogus backend name must still produce the tally."""
    from repro.campaign.plan import build_plan, execute_chunk
    from repro.faults import DEFAULT_RATES
    from repro.reliability import ExactRunConfig
    from repro.schemes import default_schemes

    scheme = next(s for s in default_schemes() if s.name == "pair")
    rates = DEFAULT_RATES.with_ber(1e-3)
    config = ExactRunConfig(trials=8, seed=5)
    plan = build_plan(scheme, rates, config, chunk_trials=8)
    ref = execute_chunk("iid", scheme, rates, config, plan.chunks[0])
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        got = execute_chunk("iid", scheme, rates, config, plan.chunks[0],
                            backend="not-a-backend")
    assert got == ref


def test_supervisor_captures_active_backend():
    from repro.campaign.supervisor import Supervisor, SupervisorPolicy
    from repro.faults import DEFAULT_RATES
    from repro.reliability import ExactRunConfig
    from repro.schemes import default_schemes

    scheme = next(s for s in default_schemes() if s.name == "pair")
    set_backend("bitsliced")
    sup = Supervisor("iid", scheme, DEFAULT_RATES, ExactRunConfig(trials=8),
                     SupervisorPolicy())
    assert sup.backend == "bitsliced"


# -- cache hygiene -----------------------------------------------------------


def test_clear_cache_drops_backend_planes():
    field = get_field(8)
    bits = get_backend("bitsliced")
    assert isinstance(bits, BitslicedBackend)
    words = np.ones((4, 30), dtype=np.int64)
    bits.syndromes(field, words, 6, 1)
    assert bits.cache_info()["plane_signatures"] >= 1
    assert len(reg.base._VANDERMONDE_CACHE) >= 1
    batch.clear_cache()
    assert bits.cache_info()["plane_signatures"] == 0
    assert len(reg.base._VANDERMONDE_CACHE) == 0


def test_clear_cache_drops_chien_tables():
    from repro.galois.backends import numpy_backend

    field = get_field(8)
    get_backend("numpy").chien_roots(field, 255, [1, 3, 5])
    assert len(numpy_backend._CHIEN_CACHE) >= 1
    batch.clear_cache()
    assert len(numpy_backend._CHIEN_CACHE) == 0


def test_cleared_caches_rebuild_identically():
    field = get_field(8)
    rng = np.random.default_rng(3)
    words = rng.integers(0, 256, size=(16, 100), dtype=np.int64)
    bits = get_backend("bitsliced")
    before = bits.syndromes(field, words, 8, 1)
    batch.clear_cache()
    after = bits.syndromes(field, words, 8, 1)
    assert np.array_equal(before, after)
