"""Unit and property tests for polynomial arithmetic over GF(2^m)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.galois import GF256, get_field, poly

GF16 = get_field(4)


def polys(field, max_len=8):
    return st.lists(
        st.integers(min_value=0, max_value=field.order - 1), min_size=1, max_size=max_len
    ).map(lambda coeffs: np.array(coeffs, dtype=np.int64))


class TestBasics:
    def test_trim(self):
        assert np.array_equal(poly.trim(np.array([1, 2, 0, 0])), [1, 2])
        assert np.array_equal(poly.trim(np.array([0, 0])), [0])

    def test_degree(self):
        assert poly.degree(np.array([0])) == -1
        assert poly.degree(np.array([5])) == 0
        assert poly.degree(np.array([0, 0, 3])) == 2

    def test_add_xors_coefficients(self):
        a = np.array([1, 2, 3])
        b = np.array([4, 5])
        assert np.array_equal(poly.add(GF256, a, b), [5, 7, 3])

    def test_add_cancels(self):
        a = np.array([7, 9, 11])
        assert poly.is_zero(poly.trim(poly.add(GF256, a, a)))

    def test_scale(self):
        p = np.array([1, 2, 4])
        assert np.array_equal(poly.scale(GF256, p, 1), p)
        assert poly.is_zero(poly.trim(poly.scale(GF256, p, 0)))

    def test_mul_by_one(self):
        p = np.array([3, 1, 4])
        assert np.array_equal(poly.trim(poly.mul(GF256, p, np.array([1]))), p)

    def test_mul_x_power(self):
        p = np.array([5, 6])
        assert np.array_equal(poly.mul_x_power(p, 2), [0, 0, 5, 6])

    def test_mul_degree_adds(self):
        a = np.array([1, 1])  # 1 + x
        b = np.array([2, 0, 1])  # 2 + x^2
        assert poly.degree(poly.mul(GF256, a, b)) == 3

    def test_evaluate_horner(self):
        # p(x) = 3 + 2x over GF(256): p(1) = 1
        p = np.array([3, 2])
        assert poly.evaluate(GF256, p, 1) == 1
        assert poly.evaluate(GF256, p, 0) == 3

    def test_evaluate_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        p = rng.integers(0, 256, 6)
        xs = rng.integers(0, 256, 20)
        many = poly.evaluate_many(GF256, p, xs)
        for i, x in enumerate(xs):
            assert many[i] == poly.evaluate(GF256, p, int(x))

    def test_derivative_char2(self):
        # d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2
        p = np.array([9, 7, 5, 3])
        d = poly.derivative(GF256, p)
        assert np.array_equal(d, [7, 0, 3])

    def test_derivative_constant_is_zero(self):
        assert poly.is_zero(poly.derivative(GF256, np.array([42])))

    def test_from_roots(self):
        roots = [3, 7, 9]
        p = poly.from_roots(GF256, roots)
        assert poly.degree(p) == 3
        for r in roots:
            assert poly.evaluate(GF256, p, r) == 0
        # monic
        assert p[-1] == 1

    def test_divmod_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            poly.divmod_(GF256, np.array([1, 2]), np.array([0]))

    def test_equal_ignores_trailing_zeros(self):
        assert poly.equal(np.array([1, 2, 0]), np.array([1, 2]))
        assert not poly.equal(np.array([1, 2]), np.array([1, 3]))


class TestDivisionProperties:
    @given(polys(GF16), polys(GF16))
    @settings(max_examples=150, deadline=None)
    def test_divmod_reconstructs(self, a, b):
        if poly.is_zero(poly.trim(b)):
            return
        q, r = poly.divmod_(GF16, a, b)
        recon = poly.add(GF16, poly.mul(GF16, q, b), r)
        assert poly.equal(recon, a)
        assert poly.degree(r) < max(poly.degree(poly.trim(b)), 0) or poly.is_zero(r)

    @given(polys(GF16), polys(GF16))
    @settings(max_examples=100, deadline=None)
    def test_mod_is_remainder(self, a, b):
        if poly.is_zero(poly.trim(b)):
            return
        assert poly.equal(poly.mod(GF16, a, b), poly.divmod_(GF16, a, b)[1])

    @given(polys(GF16, 5), polys(GF16, 5), polys(GF16, 5))
    @settings(max_examples=100, deadline=None)
    def test_mul_distributes_over_add(self, a, b, c):
        left = poly.mul(GF16, a, poly.add(GF16, b, c))
        right = poly.add(GF16, poly.mul(GF16, a, b), poly.mul(GF16, a, c))
        assert poly.equal(left, right)

    @given(polys(GF16, 5), polys(GF16, 5))
    @settings(max_examples=100, deadline=None)
    def test_evaluate_is_ring_hom(self, a, b):
        x = 7
        pa = poly.evaluate(GF16, a, x)
        pb = poly.evaluate(GF16, b, x)
        assert poly.evaluate(GF16, poly.mul(GF16, a, b), x) == GF16.mul(pa, pb)
        assert poly.evaluate(GF16, poly.add(GF16, a, b), x) == pa ^ pb
