"""Exhaustive verification of small fields against a reference implementation.

For GF(2^2) and GF(2^3) the entire multiplication table is checked against
straight polynomial multiplication modulo the primitive polynomial - the
table-driven fast path must agree everywhere.
"""

import numpy as np
import pytest

from repro.galois import GF2m, PRIMITIVE_POLYNOMIALS, get_field


def poly_mul_mod(a: int, b: int, poly: int, m: int) -> int:
    """Reference: carry-less multiply then reduce modulo the polynomial."""
    product = 0
    while b:
        if b & 1:
            product ^= a
        a <<= 1
        b >>= 1
    # reduce
    for shift in range(2 * m - 2, m - 1, -1):
        if product >> shift & 1:
            product ^= poly << (shift - m)
    return product


@pytest.mark.parametrize("m", [2, 3, 4])
def test_full_multiplication_table(m):
    field = get_field(m)
    poly = PRIMITIVE_POLYNOMIALS[m]
    for a in range(field.order):
        for b in range(field.order):
            assert field.mul(a, b) == poly_mul_mod(a, b, poly, m), (a, b)


@pytest.mark.parametrize("m", [2, 3, 4, 5])
def test_frobenius_is_automorphism(m):
    """x -> x^2 must be additive in characteristic 2 (sanity of tables)."""
    field = get_field(m)
    for a in range(field.order):
        for b in range(field.order):
            lhs = field.pow(a ^ b, 2)
            rhs = field.pow(a, 2) ^ field.pow(b, 2)
            assert lhs == rhs


@pytest.mark.parametrize("m", [2, 3, 4])
def test_fermat_little_theorem(m):
    field = get_field(m)
    for a in range(1, field.order):
        assert field.pow(a, field.order - 1) == 1


def test_alternate_primitive_polynomial_gf8():
    """GF(2^3) has two primitive polynomials; both must build valid fields."""
    for poly in (0b1011, 0b1101):
        field = GF2m(3, primitive_poly=poly)
        for a in range(1, 8):
            assert field.mul(a, field.inv(a)) == 1


def test_vectorised_table_agrees_exhaustively_gf16():
    field = get_field(4)
    a = np.repeat(np.arange(16), 16)
    b = np.tile(np.arange(16), 16)
    out = field.mul(a, b)
    for i in range(256):
        assert out[i] == field.mul(int(a[i]), int(b[i]))
