"""Tests for the batched GF(2^m) kernels and the field cache."""

import numpy as np
import pytest

from repro.codes import ReedSolomonCode
from repro.galois import GF256, batch_syndromes, get_field, poly, syndrome_tables
from repro.galois.batch import clear_cache


class TestGetFieldCache:
    def test_default_and_explicit_poly_alias(self):
        # The cache keys on the *resolved* polynomial: asking for the
        # default and naming it explicitly must yield one table set.
        assert get_field(8) is get_field(8, 0x11D)
        assert get_field(4) is get_field(4, 0b10011)

    def test_distinct_polynomials_stay_distinct(self):
        a = get_field(8)
        b = get_field(8, 0x11B)  # AES polynomial, also primitive
        assert a is not b
        assert a.mul(2, 2) == b.mul(2, 2) == 4

    def test_pickle_roundtrip_hits_cache(self):
        import pickle

        field = get_field(8)
        clone = pickle.loads(pickle.dumps(field))
        assert clone is field


class TestSyndromeTables:
    def test_cached_per_signature(self):
        clear_cache()
        v1, l1 = syndrome_tables(GF256, 76, 12, 1)
        v2, l2 = syndrome_tables(GF256, 76, 12, 1)
        assert v1 is v2 and l1 is l2
        v3, _ = syndrome_tables(GF256, 76, 12, 0)
        assert v3 is not v1

    def test_vandermonde_values(self):
        v, logv = syndrome_tables(GF256, 10, 3, 1)
        for j in range(3):
            for pos in range(10):
                coeff = 10 - 1 - pos
                assert v[j, pos] == GF256.alpha_pow((1 + j) * coeff)
        assert np.array_equal(GF256._exp[logv], v)


class TestBatchSyndromes:
    @pytest.mark.parametrize("fcr", [0, 1])
    def test_matches_scalar_syndromes(self, fcr):
        rs = ReedSolomonCode(GF256, 76, 64, fcr=fcr)
        rng = np.random.default_rng(42)
        words = rng.integers(0, 256, size=(40, 76))
        words[::3] = 0  # mix in all-zero rows (the screened fast path)
        out = batch_syndromes(GF256, words, rs.r, fcr)
        for i in range(words.shape[0]):
            assert np.array_equal(out[i], rs.syndromes(words[i])), i

    def test_sparse_rows_match_dense(self):
        # Few nonzeros per row triggers the reduceat path; a dense batch of
        # the same words (forced through chunks) must agree.
        rng = np.random.default_rng(7)
        words = np.zeros((64, 255), dtype=np.int64)
        for i in range(64):
            pos = rng.choice(255, 3, replace=False)
            words[i, pos] = rng.integers(1, 256, size=3)
        sparse = batch_syndromes(GF256, words, 16, 1)
        dense = np.stack(
            [batch_syndromes(GF256, words[i : i + 1], 16, 1)[0] for i in range(64)]
        )
        assert np.array_equal(sparse, dense)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            batch_syndromes(GF256, np.zeros(10, dtype=np.int64), 4, 1)


class TestEvaluateBatch:
    def test_matches_scalar_evaluate(self):
        rng = np.random.default_rng(3)
        polys = rng.integers(0, 256, size=(12, 9))
        xs = rng.integers(0, 256, size=17)
        out = poly.evaluate_batch(GF256, polys, xs)
        for b in range(12):
            for i, x in enumerate(xs):
                assert out[b, i] == poly.evaluate(GF256, polys[b], int(x))

    def test_evaluate_many_grid(self):
        p = [3, 0, 7, 1]
        xs = np.arange(256).reshape(16, 16)
        out = poly.evaluate_many(GF256, p, xs)
        assert out.shape == xs.shape
        flat = poly.evaluate_many(GF256, p, xs.reshape(-1))
        assert np.array_equal(out.reshape(-1), flat)


class TestMulRows:
    def test_dense_table_matches_mul(self):
        field = get_field(4)
        mt = field.mul_rows()
        for a in range(16):
            for b in range(16):
                assert mt[a][b] == field.mul(a, b)

    def test_large_field_on_the_fly(self):
        field = get_field(13)
        mt = field.mul_rows()
        rng = np.random.default_rng(11)
        for _ in range(200):
            a = int(rng.integers(field.order))
            b = int(rng.integers(field.order))
            assert mt[a][b] == field.mul(a, b)
