"""Property tests for the commutative-merge substrate (Hypothesis).

Everything the fleet does - work-stealing, lease requeues, late results,
crash-restart, degradation to the in-process supervisor - is safe only
because merging chunk tallies is order-independent and committing the same
chunk record twice is idempotent.  These properties are the load-bearing
wall; they get adversarial inputs, not examples.
"""

import json
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import Manifest
from repro.reliability.outcomes import Tally

counts_st = st.tuples(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=0, max_value=10**9),
)


def tally(quad):
    ok, ce, due, sdc = quad
    return Tally(ok=ok, ce=ce, due=due, sdc=sdc)


def fresh_manifest(total):
    # path never written: a huge save_every keeps the debounce from firing
    return Manifest(path=Path("unused-manifest.json"), config={},
                    fingerprint="test", total_chunks=total,
                    save_every=10**9)


# records keyed by chunk index, as (counts, attempts, engine) payloads
records_st = st.dictionaries(
    keys=st.integers(min_value=0, max_value=63),
    values=st.tuples(counts_st, st.integers(min_value=1, max_value=5),
                     st.sampled_from(["batched", "sequential"])),
    min_size=1, max_size=16,
)


class TestTallyMerge:
    @given(a=counts_st, b=counts_st)
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, a, b):
        assert tally(a).merge(tally(b)) == tally(b).merge(tally(a))

    @given(a=counts_st, b=counts_st, c=counts_st)
    @settings(max_examples=50, deadline=None)
    def test_associative(self, a, b, c):
        left = tally(a).merge(tally(b)).merge(tally(c))
        right = tally(a).merge(tally(b).merge(tally(c)))
        assert left == right

    @given(a=counts_st)
    @settings(max_examples=25, deadline=None)
    def test_empty_tally_is_identity(self, a):
        assert tally(a).merge(Tally()) == tally(a)
        assert Tally().merge(tally(a)) == tally(a)

    @given(quads=st.lists(counts_st, min_size=1, max_size=8),
           data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_any_permutation_merges_identically(self, quads, data):
        shuffled = data.draw(st.permutations(quads))
        fold = Tally()
        for q in quads:
            fold = fold.merge(tally(q))
        fold_shuffled = Tally()
        for q in shuffled:
            fold_shuffled = fold_shuffled.merge(tally(q))
        assert fold == fold_shuffled


class TestManifestMergeOrder:
    @given(records=records_st, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_merged_tally_ignores_commit_order(self, records, data):
        """Chunks committed in any schedule's order - stolen, requeued,
        late - merge to the same tally and serialize to the same bytes."""
        order_a = sorted(records)
        order_b = data.draw(st.permutations(order_a))
        manifests = []
        for order in (order_a, order_b):
            m = fresh_manifest(total=64)
            for index in order:
                quad, attempts, engine = records[index]
                m.record_chunk(index, tally(quad), trials=sum(quad),
                               attempts=attempts, engine=engine)
            manifests.append(m)
        a, b = manifests
        assert a.merged_tally() == b.merged_tally()
        assert a.chunks == b.chunks
        # the durable form is byte-identical too: chunk keys are sorted on
        # write, so replayed/restarted schedules converge on one manifest
        assert json.dumps(a.as_dict()) == json.dumps(b.as_dict())

    @given(records=records_st, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_duplicate_commits_are_idempotent(self, records, data):
        """Re-recording a chunk (a stolen copy's duplicate result, a resume
        replaying the tail) never changes the union."""
        order = data.draw(st.permutations(sorted(records)))
        dupes = data.draw(
            st.lists(st.sampled_from(order), min_size=1, max_size=4)
        )
        m = fresh_manifest(total=64)
        once = fresh_manifest(total=64)
        for target, indices in ((once, order), (m, list(order) + dupes)):
            for index in indices:
                quad, attempts, engine = records[index]
                target.record_chunk(index, tally(quad), trials=sum(quad),
                                    attempts=attempts, engine=engine)
        assert m.chunks == once.chunks
        assert m.merged_tally() == once.merged_tally()

    @given(records=records_st)
    @settings(max_examples=50, deadline=None)
    def test_merged_tally_totals_match_components(self, records):
        m = fresh_manifest(total=64)
        for index, (quad, attempts, engine) in records.items():
            m.record_chunk(index, tally(quad), trials=sum(quad),
                           attempts=attempts, engine=engine)
        merged = m.merged_tally()
        assert merged.total == sum(sum(quad) for quad, _, _ in records.values())
        assert merged.ok == sum(quad[0] for quad, _, _ in records.values())
        assert merged.sdc == sum(quad[3] for quad, _, _ in records.values())
