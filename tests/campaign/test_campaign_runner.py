"""Campaign end-to-end: supervision, degradation, checkpoint/resume.

The headline contract under test: a campaign that suffers crashes, hangs,
corrupted tallies and a mid-run kill still completes (via retry, timeout
enforcement, engine degradation and resume), and its merged tally is
bit-identical to one uninterrupted sequential run of the same seed.
"""

import pytest

from repro.campaign import (
    CampaignConfig,
    ChaosSchedule,
    Manifest,
    SupervisorPolicy,
    campaign_status,
    resume_campaign,
    start_campaign,
)
from repro.errors import CampaignAborted, CampaignError, EngineMismatch
from repro.faults import DEFAULT_RATES, FaultType
from repro.reliability import ExactRunConfig, run_iid, run_single_fault
from repro.schemes import default_schemes

RATES = DEFAULT_RATES.with_ber(3e-3)
TRIALS, SEED, CHUNK = 32, 7, 8  # -> 4 chunks


def counts(tally):
    return (tally.ok, tally.ce, tally.due, tally.sdc)


def config(**overrides):
    base = dict(scheme="pair", trials=TRIALS, seed=SEED, chunk_trials=CHUNK,
                rates=RATES)
    base.update(overrides)
    return CampaignConfig(**base)


def policy(**overrides):
    base = dict(workers=1, timeout=30.0, retries=2, backoff=0.01,
                poll_interval=0.005)
    base.update(overrides)
    return SupervisorPolicy(**base)


@pytest.fixture(scope="module")
def pair_scheme():
    return next(s for s in default_schemes() if s.name == "pair")


@pytest.fixture(scope="module")
def reference(pair_scheme):
    """The uninterrupted sequential engine run every campaign must match."""
    return run_iid(pair_scheme, RATES, ExactRunConfig(trials=TRIALS, seed=SEED))


class TestHappyPath:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_bit_identical_to_sequential(self, tmp_path, reference, workers):
        result = start_campaign(tmp_path, config(), policy(workers=workers))
        assert result.complete
        assert counts(result.tally) == counts(reference)

    def test_single_fault_kind_matches_engine(self, tmp_path, pair_scheme):
        ref = run_single_fault(
            pair_scheme, FaultType.ROW, RATES, ExactRunConfig(trials=16, seed=2)
        )
        result = start_campaign(
            tmp_path, config(kind="single:row", trials=16, seed=2), policy()
        )
        assert result.complete
        assert counts(result.tally) == counts(ref)

    def test_rerun_on_complete_campaign_is_noop(self, tmp_path, reference):
        start_campaign(tmp_path, config(), policy())
        again = start_campaign(tmp_path, config(), policy())
        assert again.complete
        assert counts(again.tally) == counts(reference)


class TestChaosRecovery:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_crash_and_hang_recovered_then_resume_bit_identical(
        self, tmp_path, reference, workers
    ):
        # Acceptance scenario: one chunk's worker crashes, another hangs past
        # its deadline, and the campaign is killed mid-run after 3 commits.
        # Retry + timeout-terminate + resume must still converge on the
        # uninterrupted reference, at workers=1 and workers=4.
        chaos = ChaosSchedule.parse("crash:1,hang:2,abort:3")
        pol = policy(workers=workers, timeout=1.0)
        with pytest.raises(CampaignAborted):
            start_campaign(tmp_path, config(), pol, chaos)
        status = campaign_status(tmp_path)
        assert 0 < status["chunks_done"] < status["total_chunks"]
        result = resume_campaign(tmp_path, policy(workers=workers))
        assert result.complete
        assert counts(result.tally) == counts(reference)
        manifest = Manifest.load(tmp_path)
        # the crashed and hung chunks took more than one attempt
        assert manifest.chunks[1].attempts >= 2 or manifest.chunks[2].attempts >= 2

    def test_batched_kernel_failure_degrades_to_sequential(
        self, tmp_path, reference
    ):
        # "raise" fires on every batched attempt: only the sequential
        # fallback can complete chunk 0.
        result = start_campaign(
            tmp_path, config(), policy(), ChaosSchedule.parse("raise:0")
        )
        assert result.complete
        assert counts(result.tally) == counts(reference)
        manifest = Manifest.load(tmp_path)
        assert manifest.chunks[0].engine == "sequential"
        assert manifest.chunks[0].attempts == 2
        assert manifest.chunks[1].engine == "batched"

    def test_corrupt_tally_is_guarded_not_merged(self, tmp_path, reference):
        result = start_campaign(
            tmp_path, config(), policy(), ChaosSchedule.parse("corrupt:2")
        )
        assert result.complete
        assert counts(result.tally) == counts(reference)
        assert Manifest.load(tmp_path).chunks[2].attempts == 2

    def test_persistent_crash_quarantines_then_resume_finishes(
        self, tmp_path, reference
    ):
        chaos = ChaosSchedule.parse("crash:1@0|1")
        result = start_campaign(tmp_path, config(), policy(retries=1), chaos)
        assert not result.complete
        assert sorted(result.quarantined) == [1]
        assert result.quarantined[1].error == "crash"
        assert result.chunks_done == 3
        # quarantine is surfaced, not silently dropped: the partial tally
        # covers exactly the other chunks' trials
        assert result.tally.total == TRIALS - CHUNK
        resumed = resume_campaign(tmp_path, policy())
        assert resumed.complete
        assert counts(resumed.tally) == counts(reference)

    def test_hang_is_classified_as_timeout(self, tmp_path):
        chaos = ChaosSchedule.parse("hang:0@0|1")
        result = start_campaign(
            tmp_path, config(), policy(retries=1, timeout=0.5), chaos
        )
        assert sorted(result.quarantined) == [0]
        assert result.quarantined[0].error == "timeout"


class TestResumeRefusals:
    def test_mismatched_config_refused(self, tmp_path):
        chaos = ChaosSchedule.parse("abort:1")
        with pytest.raises(CampaignAborted):
            start_campaign(tmp_path, config(), policy(), chaos)
        with pytest.raises(EngineMismatch):
            start_campaign(tmp_path, config(seed=SEED + 1), policy())
        with pytest.raises(EngineMismatch):
            start_campaign(
                tmp_path, config(rates=DEFAULT_RATES.with_ber(1e-6)), policy()
            )

    def test_resume_without_manifest_refused(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign manifest"):
            resume_campaign(tmp_path)

    def test_operational_knobs_do_not_affect_fingerprint(self, tmp_path, reference):
        # workers/timeout/retries may change between run and resume freely.
        chaos = ChaosSchedule.parse("abort:2")
        with pytest.raises(CampaignAborted):
            start_campaign(tmp_path, config(), policy(workers=1), chaos)
        result = resume_campaign(
            tmp_path, policy(workers=4, timeout=10.0, retries=0)
        )
        assert result.complete
        assert counts(result.tally) == counts(reference)


class TestValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign kind"):
            config(kind="bogus")
        with pytest.raises(ValueError, match="unknown fault type"):
            config(kind="single:bogus")

    def test_bad_trials_rejected(self):
        with pytest.raises(ValueError):
            config(trials=0)

    def test_unknown_scheme_surfaces(self, tmp_path):
        with pytest.raises(CampaignError, match="unknown scheme"):
            start_campaign(tmp_path, config(scheme="nope"), policy())
