"""Manifest crash-safety and fingerprint refusal."""

import json

import pytest

from repro.campaign.manifest import MANIFEST_NAME, Manifest, fingerprint
from repro.errors import CampaignError, EngineMismatch
from repro.reliability import Tally

CONFIG = {"scheme": "pair", "kind": "iid", "trials": 64, "seed": 0,
          "resample_faults_every": 1, "chunk_trials": 8,
          "rates": {"single_cell_ber": 1e-4}, "plan_version": 1}


def make(tmp_path, config=None, total=4):
    return Manifest.create(tmp_path, config or dict(CONFIG), total_chunks=total)


class TestFingerprint:
    def test_stable_under_key_order(self):
        a = {"x": 1, "y": {"a": 2, "b": 3}}
        b = {"y": {"b": 3, "a": 2}, "x": 1}
        assert fingerprint(a) == fingerprint(b)

    def test_sensitive_to_values(self):
        assert fingerprint({"seed": 0}) != fingerprint({"seed": 1})


class TestRoundtrip:
    def test_create_load_roundtrip(self, tmp_path):
        manifest = make(tmp_path)
        manifest.record_chunk(0, Tally(ok=5, ce=2, due=1, sdc=0), trials=8,
                              attempts=1, engine="batched")
        manifest.quarantine_chunk(2, "crash", "worker died", attempts=3, seed=77)
        loaded = Manifest.load(tmp_path)
        assert loaded.fingerprint == manifest.fingerprint
        assert loaded.total_chunks == 4
        assert loaded.chunks[0].tally().as_dict() == Tally(5, 2, 1, 0).as_dict()
        assert loaded.chunks[0].engine == "batched"
        assert loaded.quarantined[2].error == "crash"
        assert loaded.quarantined[2].seed == 77
        assert loaded.pending_indices() == [1, 2, 3]

    def test_merged_tally_sums_chunks(self, tmp_path):
        manifest = make(tmp_path)
        manifest.record_chunk(0, Tally(ok=5, ce=3, due=0, sdc=0), 8, 1, "batched")
        manifest.record_chunk(1, Tally(ok=7, ce=0, due=1, sdc=0), 8, 2, "sequential")
        merged = manifest.merged_tally()
        assert (merged.ok, merged.ce, merged.due, merged.sdc) == (12, 3, 1, 0)

    def test_record_chunk_clears_quarantine(self, tmp_path):
        manifest = make(tmp_path)
        manifest.quarantine_chunk(1, "timeout", "slow", 3, seed=5)
        manifest.record_chunk(1, Tally(ok=8), 8, 1, "batched")
        assert Manifest.load(tmp_path).quarantined == {}

    def test_status_summary(self, tmp_path):
        manifest = make(tmp_path)
        manifest.record_chunk(0, Tally(ok=8), 8, 1, "batched")
        status = manifest.status()
        assert status["chunks_done"] == 1
        assert status["total_chunks"] == 4
        assert not status["complete"]


class TestDebouncedSave:
    def test_save_every_batches_disk_writes(self, tmp_path):
        manifest = make(tmp_path, total=8)
        manifest.save_every = 3
        path = tmp_path / MANIFEST_NAME
        manifest.record_chunk(0, Tally(ok=8), 8, 1, "batched")
        manifest.record_chunk(1, Tally(ok=8), 8, 1, "batched")
        assert json.loads(path.read_text())["chunks"] == {}  # still held back
        manifest.record_chunk(2, Tally(ok=8), 8, 1, "batched")  # hits threshold
        assert set(json.loads(path.read_text())["chunks"]) == {"0", "1", "2"}

    def test_flush_persists_and_is_idempotent(self, tmp_path):
        manifest = make(tmp_path, total=8)
        manifest.save_every = 100
        manifest.record_chunk(0, Tally(ok=8), 8, 1, "batched")
        assert json.loads((tmp_path / MANIFEST_NAME).read_text())["chunks"] == {}
        manifest.flush()
        on_disk = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert set(on_disk["chunks"]) == {"0"}
        manifest.flush()  # clean: a no-op, not a rewrite of stale state
        assert json.loads((tmp_path / MANIFEST_NAME).read_text()) == on_disk

    def test_disk_state_is_always_a_loadable_prefix(self, tmp_path):
        """A crash between debounced saves may lose recent records but can
        never leave an unreadable or wrong manifest behind."""
        manifest = make(tmp_path, config=dict(CONFIG, trials=64), total=8)
        manifest.save_every = 2
        recorded = set()
        for index in range(5):
            manifest.record_chunk(index, Tally(ok=8), 8, 1, "batched")
            recorded.add(index)
            loaded = Manifest.load(tmp_path)
            assert set(loaded.chunks) <= recorded
            assert all(loaded.chunks[i].ok == 8 for i in loaded.chunks)

    def test_quarantine_saves_immediately_with_pending_records(self, tmp_path):
        # quarantine is rare and always worth a write; the save also carries
        # any debounced chunk records along with it
        manifest = make(tmp_path, total=8)
        manifest.save_every = 100
        manifest.record_chunk(0, Tally(ok=8), 8, 1, "batched")
        manifest.quarantine_chunk(3, "crash", "worker died", 3, seed=1)
        loaded = Manifest.load(tmp_path)
        assert set(loaded.chunks) == {0}
        assert set(loaded.quarantined) == {3}


class TestRefusals:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign manifest"):
            Manifest.load(tmp_path)

    def test_truncated_manifest_is_explicit_error(self, tmp_path):
        # Simulates a non-atomic writer dying mid-write; our own writer can
        # never produce this, but the reader must still fail loudly.
        make(tmp_path)
        path = tmp_path / MANIFEST_NAME
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(CampaignError, match="corrupt"):
            Manifest.load(tmp_path)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        manifest = make(tmp_path)
        other = dict(CONFIG, seed=99)
        with pytest.raises(EngineMismatch):
            manifest.check_fingerprint(other)

    def test_matching_fingerprint_accepted(self, tmp_path):
        make(tmp_path).check_fingerprint(dict(CONFIG))

    def test_edited_config_detected_on_load(self, tmp_path):
        make(tmp_path)
        path = tmp_path / MANIFEST_NAME
        raw = json.loads(path.read_text())
        raw["config"]["seed"] = 42  # tamper without updating the fingerprint
        path.write_text(json.dumps(raw))
        with pytest.raises(EngineMismatch, match="edited or mixed"):
            Manifest.load(tmp_path)

    def test_version_skew_refused(self, tmp_path):
        make(tmp_path)
        path = tmp_path / MANIFEST_NAME
        raw = json.loads(path.read_text())
        raw["version"] = 99
        path.write_text(json.dumps(raw))
        with pytest.raises(CampaignError, match="version"):
            Manifest.load(tmp_path)
