"""Fleet telemetry: health-signal math, the event journal, and streaming.

The load-bearing claims: derived signals (EWMA rates, straggler scores,
ETA) are pure functions of the facts the scheduler feeds in; the event
log survives torn tails and replays into the dashboard; and - the
headline - a fleet streaming live telemetry through drop/dup/reorder
chaos produces a tally bit-identical to a single-process run with
observability off entirely, because the stream is advisory by
construction.
"""

import asyncio
import json

import pytest

from repro import obs
from repro.campaign import FleetChaos, start_campaign
from repro.campaign.fleet import (
    EVENTS_NAME,
    EventLog,
    FleetAgent,
    FleetScheduler,
    FleetTelemetry,
    read_events,
)
from repro.obs import (
    load_watch_dir,
    parse_openmetrics,
    stable_trace_id,
)

from .test_fleet import _start, agent_policy, config, counts, policy


@pytest.fixture(autouse=True)
def clean_obs():
    """Streaming agents enable the process-global registry; leave it clean."""
    obs.reset_all()
    obs.disable()
    yield
    obs.reset_all()
    obs.disable()


# -- health signal math --------------------------------------------------------


class TestFleetTelemetryMath:
    def test_chunk_rate_ewma_from_intervals(self):
        telemetry = FleetTelemetry()
        telemetry.chunk_done("w0", duration_s=0.5, now=10.0)
        assert telemetry.agents["w0"].chunk_rate() == 0.0  # one point, no rate
        telemetry.chunk_done("w0", duration_s=0.5, now=12.0)
        assert telemetry.agents["w0"].chunk_rate() == 0.5  # 1 per 2s
        # a faster completion pulls the EWMA up by alpha
        telemetry.chunk_done("w0", duration_s=0.5, now=13.0)
        interval = telemetry.agents["w0"].ewma_interval_s
        assert interval == pytest.approx(0.3 * 1.0 + 0.7 * 2.0)
        assert telemetry.fleet_rate() == pytest.approx(1.0 / interval)

    def test_straggler_score_is_duration_over_fleet_median(self):
        telemetry = FleetTelemetry()
        telemetry.chunk_done("fast", duration_s=1.0, now=1.0)
        telemetry.chunk_done("slow", duration_s=3.0, now=1.0)
        median = 2.0
        assert telemetry.straggler_score("fast") == pytest.approx(1.0 / median)
        assert telemetry.straggler_score("slow") == pytest.approx(3.0 / median)
        # unknown agents and agents without durations read neutral
        assert telemetry.straggler_score("nobody") == 1.0

    def test_eta_needs_a_rate(self):
        telemetry = FleetTelemetry()
        assert telemetry.eta_s(0) == 0.0
        assert telemetry.eta_s(5) is None  # no rate yet
        telemetry.chunk_done("w0", duration_s=0.1, now=1.0)
        telemetry.chunk_done("w0", duration_s=0.1, now=2.0)  # 1 chunk/s
        assert telemetry.eta_s(5) == pytest.approx(5.0)

    def test_ingest_counts_rejects(self):
        telemetry = FleetTelemetry()
        assert telemetry.ingest("w0", {"kind": "junk"}, now=1.0) is False
        assert telemetry.ingest("w0", None, now=1.0) is False
        assert telemetry.telemetry_rejected == 2
        assert telemetry.telemetry_frames == 0
        # rejected frames still count as liveness
        assert telemetry.agents["w0"].last_seen == 1.0

    def test_openmetrics_families_render_and_parse(self):
        telemetry = FleetTelemetry()
        telemetry.chunk_done("w0", duration_s=0.5, now=1.0)
        text = obs.render_openmetrics(
            telemetry.merger.snapshot(), telemetry.openmetrics_families(2.0)
        )
        parsed = parse_openmetrics(text)
        ((labels, value),) = parsed["repro_fleet_agent_chunks_done"]["samples"]
        assert labels["agent"] == "w0"
        assert value == 1
        ((labels, value),) = parsed["repro_fleet_agent_last_seen_age"]["samples"]
        assert value == pytest.approx(1.0)


# -- event journal -------------------------------------------------------------


class TestEventLog:
    def test_emit_read_round_trip(self, tmp_path):
        path = tmp_path / EVENTS_NAME
        log = EventLog(path)
        log.emit("serve_start", fingerprint="f" * 8)
        log.emit("chunk_commit", chunk=3, trace_id=42)
        log.close()
        events = read_events(path)
        assert [e["event"] for e in events] == ["serve_start", "chunk_commit"]
        assert events[1]["chunk"] == 3
        assert all("t" in e for e in events)

    def test_disabled_log_writes_nothing(self, tmp_path):
        path = tmp_path / EVENTS_NAME
        log = EventLog(path, enabled=False)
        log.emit("serve_start")
        log.close()
        assert not path.exists()

    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / EVENTS_NAME
        log = EventLog(path)
        log.emit("serve_start")
        log.close()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "chunk_com')  # writer killed mid-line
        events = read_events(path)
        assert [e["event"] for e in events] == ["serve_start"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / EVENTS_NAME
        path.write_text('not json\n{"event": "x"}\n')
        with pytest.raises(ValueError):
            read_events(path)


# -- streaming end-to-end ------------------------------------------------------


class TestStreamingFleet:
    def test_streaming_agent_feeds_scheduler_telemetry(self, tmp_path):
        """One streaming agent, slowed so heartbeats actually fire: the
        scheduler's merger sees delta frames and the final sidecar carries
        a watch payload the dashboard can read."""
        cfg = config(trials=48, chunk=8, seed=3)  # 6 chunks
        chaos = FleetChaos.parse("slow:w0@1|3|5", slow_seconds=0.2)

        async def main():
            sched = FleetScheduler(
                tmp_path / "fleet", cfg,
                policy=policy(heartbeat_interval=0.02, lease_timeout=5.0),
            )
            serve = await _start(sched)
            host, port = sched.endpoint
            agent = FleetAgent("w0", host=host, port=port, chaos=chaos,
                               policy=agent_policy(), stream=True)
            summary = await agent.run()
            result = await serve
            return sched, result, summary

        sched, result, summary = asyncio.run(main())
        assert result.complete
        assert sched.telemetry.telemetry_frames >= 1
        merged = sched.telemetry.merger.snapshot()
        assert merged["counters"].get("reliability.chunks", 0) >= 1
        assert sched.telemetry.merger.stats()["w0"]["frames"] >= 1
        # the completed sidecar is dashboard-readable
        payload = load_watch_dir(tmp_path / "fleet")
        assert payload["state"] == "complete"
        assert payload["chunks_done"] == result.chunks_done
        assert payload["agents"]["w0"]["chunks_done"] == summary.chunks_done
        assert payload["telemetry_frames"] == sched.telemetry.telemetry_frames

    def test_streaming_chaos_fleet_bit_identical_to_obs_off_reference(
        self, tmp_path
    ):
        """The no-perturbation contract, end to end: three streaming agents
        under frame drop/dup/reorder chaos still produce the exact tally of
        an uninterrupted obs-disabled single-process run."""
        cfg = config(trials=96, chunk=8, seed=11)  # 12 chunks
        ref = start_campaign(tmp_path / "ref", cfg)
        chaos = FleetChaos.parse(
            "drop:w0@3,dup:w1@4,reorder:w2@5,slow:w1@1", slow_seconds=0.1,
        )

        async def main():
            sched = FleetScheduler(
                tmp_path / "fleet", cfg,
                policy=policy(heartbeat_interval=0.02, lease_timeout=1.0,
                              retries=4),
            )
            serve = await _start(sched)
            host, port = sched.endpoint
            agents = [
                FleetAgent(f"w{i}", host=host, port=port, chaos=chaos,
                           policy=agent_policy(), stream=True)
                for i in range(3)
            ]
            await asyncio.gather(*(a.run() for a in agents))
            return sched, await serve

        sched, result = asyncio.run(main())
        assert result.complete
        assert counts(result.tally) == counts(ref.tally)  # the whole point
        assert sched._fatal is None

    def test_event_log_correlates_scheduler_and_agent_spans(self, tmp_path):
        cfg = config(trials=32, chunk=8, seed=5)  # 4 chunks

        async def main():
            sched = FleetScheduler(tmp_path / "fleet", cfg, policy=policy())
            serve = await _start(sched)
            host, port = sched.endpoint
            agent = FleetAgent("w0", host=host, port=port,
                               policy=agent_policy(), stream=True)
            await agent.run()
            return sched, await serve

        sched, result = asyncio.run(main())
        assert result.complete
        events = read_events(tmp_path / "fleet" / EVENTS_NAME)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "serve_start"
        assert kinds[-1] == "serve_exit"
        assert "agent_join" in kinds
        grants = [e for e in events if e["event"] == "lease_grant"]
        commits = [e for e in events if e["event"] == "chunk_commit"]
        assert len(commits) == result.chunks_done
        fp = sched.manifest.fingerprint
        granted = {(g["chunk"], g["attempt"]): g["trace_id"] for g in grants}
        for commit in commits:
            # trace ids are pure functions of (fingerprint, chunk, attempt):
            # grant, commit, and the agent-side span all carry the same one
            # (the commit event's attempt is 1-based, the trace key 0-based)
            attempt = commit["attempt"] - 1
            want = stable_trace_id(fp, commit["chunk"], attempt)
            assert commit["trace_id"] == want
            assert granted[(commit["chunk"], attempt)] == want
            assert commit["agent_span"]["trace_id"] == want
            assert commit["agent_span"]["name"] == "agent.chunk"
            assert commit["agent_span"]["span_id"] != 0

    def test_no_event_log_policy_writes_no_journal(self, tmp_path):
        cfg = config(trials=16, chunk=8, seed=2)

        async def main():
            sched = FleetScheduler(
                tmp_path / "fleet", cfg, policy=policy(event_log=False),
            )
            serve = await _start(sched)
            host, port = sched.endpoint
            agent = FleetAgent("w0", host=host, port=port,
                               policy=agent_policy())
            await agent.run()
            return await serve

        result = asyncio.run(main())
        assert result.complete
        assert not (tmp_path / "fleet" / EVENTS_NAME).exists()


# -- the HTTP side of the frame port -------------------------------------------


async def _http_get(host, port, path, method="GET"):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"{method} {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header, _, body = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    return status, header.decode("latin-1"), body.decode()


class TestHttpEndpoints:
    def test_metrics_and_status_share_the_frame_port(self, tmp_path):
        cfg = config(trials=16, chunk=8, seed=2)

        async def main():
            sched = FleetScheduler(tmp_path / "fleet", cfg, policy=policy())
            serve = await _start(sched)
            host, port = sched.endpoint

            status, header, body = await _http_get(host, port, "/metrics")
            assert status == 200
            assert "application/openmetrics-text" in header
            parse_openmetrics(body)  # terminator + shape, not just a 200

            status, _, body = await _http_get(host, port, "/status")
            assert status == 200
            watch = json.loads(body)
            assert watch["kind"] == "fleet_watch"
            assert watch["state"] == "serving"

            status, _, _ = await _http_get(host, port, "/nope")
            assert status == 404

            status, header, body = await _http_get(
                host, port, "/metrics", method="HEAD")
            assert status == 200 and body == ""

            # HTTP probes must not have perturbed the frame protocol: a
            # normal agent joins afterwards and completes the campaign
            agent = FleetAgent("w0", host=host, port=port,
                               policy=agent_policy(), stream=True)
            await agent.run()
            return sched, await serve

        sched, result = asyncio.run(main())
        assert result.complete
        assert sched._fatal is None

    def test_metrics_exposes_agent_health_after_commits(self, tmp_path):
        cfg = config(trials=32, chunk=8, seed=9)
        chaos = FleetChaos.parse("slow:w0@2|3", slow_seconds=0.15)

        async def main():
            sched = FleetScheduler(
                tmp_path / "fleet", cfg,
                policy=policy(heartbeat_interval=0.02, lease_timeout=5.0),
            )
            serve = await _start(sched)
            host, port = sched.endpoint
            agent = FleetAgent("w0", host=host, port=port, chaos=chaos,
                               policy=agent_policy(), stream=True)
            agent_task = asyncio.ensure_future(agent.run())
            # poll until at least one chunk committed, then scrape
            while not sched.manifest.chunks:
                await asyncio.sleep(0.01)
            _, _, body = await _http_get(host, port, "/metrics")
            result = await serve
            await agent_task
            return body, result

        body, result = asyncio.run(main())
        assert result.complete
        parsed = parse_openmetrics(body)
        fam = parsed["repro_fleet_agent_chunks_done"]
        assert fam["type"] == "counter"
        ((labels, value),) = fam["samples"]
        assert labels["agent"] == "w0"
        assert value >= 1
