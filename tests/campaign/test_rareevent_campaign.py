"""Rare-event campaigns: weighted tallies through crash, resume and fleet.

The weighted accumulator rides ``Tally.extra["weighted"]`` through every
process boundary the campaign stack has - worker wire, manifest JSON,
fleet frames.  A resumed campaign must reproduce the uninterrupted run
*including* the log-space weight sums bit for bit, and the proposal
parameters (tilt, defensive mass) must be pinned by the manifest
fingerprint so a resume under a different proposal is refused rather
than silently merged into a biased estimate.
"""

import json

import pytest

from repro.campaign import (
    CampaignConfig,
    ChaosSchedule,
    Manifest,
    SupervisorPolicy,
    resume_campaign,
    start_campaign,
)
from repro.campaign.manifest import MANIFEST_NAME
from repro.errors import CampaignAborted, EngineMismatch
from repro.faults import DEFAULT_RATES
from repro.reliability import (
    ExactRunConfig,
    RareEventParams,
    run_rareevent_iid,
    weighted_summary,
)
from repro.schemes import default_schemes

BER, TRIALS, SEED, CHUNK = 1e-4, 8_192, 7, 2_048  # -> 4 chunks
RATES = DEFAULT_RATES.pure_ber(BER)
TILT, DEFENSIVE, SAMPLES = 3.5, 0.05, 120


def counts(tally):
    return (tally.ok, tally.ce, tally.due, tally.sdc)


def config(**overrides):
    base = dict(scheme="pair", kind="rareevent", trials=TRIALS, seed=SEED,
                chunk_trials=CHUNK, rates=RATES, tilt=TILT,
                defensive=DEFENSIVE, rare_samples=SAMPLES)
    base.update(overrides)
    return CampaignConfig(**base)


def policy(**overrides):
    base = dict(workers=1, timeout=30.0, retries=2, backoff=0.01,
                poll_interval=0.005)
    base.update(overrides)
    return SupervisorPolicy(**base)


@pytest.fixture(scope="module")
def pair_scheme():
    return next(s for s in default_schemes() if s.name == "pair")


@pytest.fixture(scope="module")
def reference(pair_scheme):
    """Uninterrupted in-process engine run with the campaign's chunking."""
    return run_rareevent_iid(
        pair_scheme, RATES, ExactRunConfig(trials=TRIALS, seed=SEED),
        RareEventParams(tilt=TILT, defensive=DEFENSIVE, samples=SAMPLES),
        chunk_trials=CHUNK,
    )


class TestHappyPath:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_bit_identical_to_engine(self, tmp_path, reference, workers):
        result = start_campaign(tmp_path, config(), policy(workers=workers))
        assert result.complete
        assert counts(result.tally) == counts(reference.tally)
        assert result.tally.extra["weighted"] == \
            reference.tally.extra["weighted"]

    def test_fingerprint_carries_proposal_params(self, tmp_path):
        start_campaign(tmp_path, config(), policy())
        raw = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert raw["config"]["rareevent"] == {
            "tilt": TILT, "defensive": DEFENSIVE, "samples": SAMPLES,
            "table_seed": 0,
        }

    def test_tilt_zero_falls_back_to_iid_chunking(self, tmp_path, pair_scheme):
        from repro.reliability import run_iid_batched

        ref = run_iid_batched(
            pair_scheme, RATES, ExactRunConfig(trials=64, seed=3)
        )
        result = start_campaign(
            tmp_path, config(trials=64, seed=3, chunk_trials=16, tilt=0.0),
            policy(),
        )
        assert result.complete
        assert counts(result.tally) == counts(ref)


class TestChaosResume:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_resume_bit_identical_including_weights(
        self, tmp_path, reference, workers
    ):
        chaos = ChaosSchedule.parse("crash:1,abort:2")
        with pytest.raises(CampaignAborted):
            start_campaign(tmp_path, config(), policy(workers=workers), chaos)
        result = resume_campaign(tmp_path, policy(workers=workers))
        assert result.complete
        assert counts(result.tally) == counts(reference.tally)
        assert result.tally.extra["weighted"] == \
            reference.tally.extra["weighted"]
        # and the estimates derived from the resumed accumulator match
        est = weighted_summary(result.tally.extra["weighted"])
        ref = reference.estimates()["outcomes"]["fail"]
        assert est["outcomes"]["fail"]["p_ht"] == ref["p_ht"]

    def test_weighted_extras_survive_manifest_round_trip(self, tmp_path):
        chaos = ChaosSchedule.parse("abort:2")
        with pytest.raises(CampaignAborted):
            start_campaign(tmp_path, config(), policy(), chaos)
        manifest = Manifest.load(tmp_path)
        assert manifest.chunks  # only committed chunks live in the manifest
        for rec in manifest.chunks.values():
            weighted = rec.tally().extra["weighted"]
            assert weighted["tilt"] == TILT
            assert weighted["n"] == CHUNK

    def test_changed_tilt_refused(self, tmp_path):
        with pytest.raises(CampaignAborted):
            start_campaign(tmp_path, config(), policy(),
                           ChaosSchedule.parse("abort:1"))
        with pytest.raises(EngineMismatch):
            start_campaign(tmp_path, config(tilt=TILT + 0.5), policy())
        with pytest.raises(EngineMismatch):
            start_campaign(tmp_path, config(defensive=0.2), policy())
        with pytest.raises(EngineMismatch):
            start_campaign(tmp_path, config(rare_samples=SAMPLES + 1),
                           policy())


class TestConfigValidation:
    def test_tilt_requires_rareevent_kind(self):
        with pytest.raises(ValueError, match="rareevent"):
            CampaignConfig(scheme="pair", trials=8, seed=0, chunk_trials=4,
                           rates=RATES, kind="iid", tilt=1.0)

    def test_defensive_range_checked(self):
        with pytest.raises(ValueError, match="defensive"):
            config(defensive=1.0)

    def test_structured_rates_refused_in_plan(self, tmp_path):
        bad = config(rates=DEFAULT_RATES.with_ber(BER))
        with pytest.raises(ValueError, match="structured"):
            start_campaign(tmp_path, bad, policy())
