"""Zombie-free worker teardown: SIGTERM, then SIGKILL, always reaped."""

import signal
import time

from repro.campaign.supervisor import _mp_context, terminate_worker
from repro.obs import metrics


def _cooperative_child():
    # default SIGTERM disposition: dies promptly when asked
    while True:
        time.sleep(0.05)


def _stubborn_child():
    # the zombie scenario: a worker wedged with SIGTERM masked never exits
    # on terminate(); only the SIGKILL escalation can reclaim it
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.05)


def _start(target):
    process = _mp_context().Process(target=target, daemon=True)
    process.start()
    return process


class TestTerminateWorker:
    def test_cooperative_child_needs_no_escalation(self):
        process = _start(_cooperative_child)
        assert terminate_worker(process, grace=5.0) is False
        assert not process.is_alive()
        assert process.exitcode is not None  # joined: reaped, no zombie

    def test_sigterm_ignoring_child_is_killed_and_reaped(self):
        process = _start(_stubborn_child)
        time.sleep(0.3)  # let the child install its SIG_IGN first
        assert terminate_worker(process, grace=0.2) is True
        assert not process.is_alive()
        assert process.exitcode == -signal.SIGKILL

    def test_already_dead_child_is_reaped_without_signals(self):
        process = _start(_cooperative_child)
        process.kill()
        process.join()
        assert terminate_worker(process, grace=0.1) is False
        assert process.exitcode is not None

    def test_escalation_is_counted(self):
        metrics.reset()
        with metrics.enabled_scope():
            process = _start(_stubborn_child)
            time.sleep(0.3)
            assert terminate_worker(process, grace=0.2) is True
            counters = metrics.snapshot()["counters"]
        assert counters.get("campaign.kill_escalations", 0) >= 1
