"""Distributed fleet: protocol, leases, cache, and chaos-driven end-to-end.

The headline contract: a fleet campaign that suffers agent kills, agent
hangs, a network partition, frame-level faults, work-stealing races and a
mid-run scheduler crash-with-restart still completes, and its merged tally
is bit-identical to one uninterrupted single-process run of the same seed.
"""

import asyncio
import json

import pytest

from repro.campaign import (
    CampaignConfig,
    FleetChaos,
    Manifest,
    resume_campaign,
    start_campaign,
)
from repro.campaign.fleet import (
    FleetAgent,
    FleetPolicy,
    FleetScheduler,
    LeaseTable,
    ResultCache,
    encode_frame,
    fleet_status,
    read_frame,
    serve_campaign,
)
from repro.campaign.fleet.agent import AgentKilled, AgentPolicy
from repro.campaign.manifest import fingerprint
from repro.errors import (
    AgentFailure,
    CampaignAborted,
    DuplicateMismatch,
    EngineMismatch,
    FleetProtocolError,
)
from repro.faults import DEFAULT_RATES

RATES = DEFAULT_RATES.with_ber(3e-3)


def config(trials=32, chunk=8, seed=7, **overrides):
    base = dict(scheme="pair", trials=trials, seed=seed, chunk_trials=chunk,
                rates=RATES)
    base.update(overrides)
    return CampaignConfig(**base)


def policy(**overrides):
    base = dict(lease_timeout=1.0, heartbeat_interval=0.2, tick=0.02,
                idle_retry=0.05, drain_grace=0.3, backoff=0.25)
    base.update(overrides)
    return FleetPolicy(**base)


def agent_policy(**overrides):
    base = dict(connect_timeout=20.0, reconnect_delay=0.05)
    base.update(overrides)
    return AgentPolicy(**base)


def counts(tally):
    return (tally.ok, tally.ce, tally.due, tally.sdc)


async def _start(scheduler):
    """Launch serve() and wait until the endpoint is bound."""
    task = asyncio.ensure_future(scheduler.serve())
    while scheduler.endpoint is None:
        if task.done():
            task.result()  # surface the startup error
        await asyncio.sleep(0.005)
    return task


# -- wire protocol -------------------------------------------------------------


async def _loopback():
    """A client writer and the matching server-side reader, over localhost."""
    ready = asyncio.Queue()

    async def on_conn(reader, writer):
        await ready.put(reader)

    server = await asyncio.start_server(on_conn, host="127.0.0.1", port=0)
    host, port = server.sockets[0].getsockname()[:2]
    _, client_writer = await asyncio.open_connection(host, port)
    served_reader = await ready.get()
    return server, client_writer, served_reader


class TestProtocol:
    def test_round_trip_and_eof(self):
        async def main():
            server, writer, reader = await _loopback()
            frame = {"type": "hello", "agent": "a0", "n": 3}
            writer.write(encode_frame(frame))
            await writer.drain()
            assert await read_frame(reader) == frame
            writer.close()
            assert await read_frame(reader) is None  # clean EOF, not an error
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    def test_encode_is_canonical(self):
        a = encode_frame({"type": "x", "b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1, "type": "x"})
        assert a == b  # sorted keys: identical frames are identical bytes

    def test_oversized_length_prefix_rejected(self):
        async def main():
            server, writer, reader = await _loopback()
            writer.write((1 << 30).to_bytes(4, "big") + b"junk")
            await writer.drain()
            with pytest.raises(FleetProtocolError, match="claims"):
                await read_frame(reader)
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    @pytest.mark.parametrize(
        "body,match",
        [(b"not json", "undecodable"), (b"[1,2]", "'type'"), (b"{}", "'type'")],
    )
    def test_malformed_bodies_rejected(self, body, match):
        async def main():
            server, writer, reader = await _loopback()
            writer.write(len(body).to_bytes(4, "big") + body)
            await writer.drain()
            with pytest.raises(FleetProtocolError, match=match):
                await read_frame(reader)
            server.close()
            await server.wait_closed()

        asyncio.run(main())


# -- lease table ---------------------------------------------------------------


class TestLeaseTable:
    def test_grant_heartbeat_expire(self):
        table = LeaseTable(timeout=1.0)
        lease = table.grant(chunk=3, agent="a0", attempt=0, engine="batched",
                            now=100.0)
        assert lease.deadline == 101.0
        assert table.heartbeat(lease.lease_id, now=100.8)
        assert table.expire_due(now=101.5) == []  # the heartbeat extended it
        due = table.expire_due(now=102.0)
        assert [le.lease_id for le in due] == [lease.lease_id]
        assert len(table) == 0 and table.expired == 1
        assert not table.heartbeat(lease.lease_id, now=102.1)  # gone

    def test_release_chunk_retires_all_copies(self):
        table = LeaseTable(timeout=5.0)
        first = table.grant(1, "a0", 0, "batched", now=0.0)
        steal = table.grant(1, "a1", 0, "batched", now=1.0,
                            stolen_from=first.lease_id)
        assert steal.is_steal and table.stolen == 1
        assert table.copies(1) == 2
        retired = table.release_chunk(1)
        assert len(retired) == 2 and len(table) == 0
        assert table.covered_chunks() == set()

    def test_steal_candidate_oldest_not_self_not_capped(self):
        table = LeaseTable(timeout=5.0)
        old = table.grant(1, "a0", 0, "batched", now=0.0)
        table.grant(2, "a1", 0, "batched", now=1.0)
        # oldest outstanding lease wins: target the worst straggler
        assert table.steal_candidate("a2", max_copies=2) is old
        # an agent never steals its own lease
        assert table.steal_candidate("a0", max_copies=2).chunk == 2
        # copy cap: once chunk 1 has two live leases it stops being a candidate
        table.grant(1, "a2", 0, "batched", now=2.0, stolen_from=old.lease_id)
        assert table.steal_candidate("a3", max_copies=2).chunk == 2

    def test_drop_agent_returns_only_its_leases(self):
        table = LeaseTable(timeout=5.0)
        table.grant(1, "a0", 0, "batched", now=0.0)
        table.grant(2, "a1", 1, "sequential", now=0.0)
        dropped = table.drop_agent("a0")
        assert [le.chunk for le in dropped] == [1]
        assert table.covered_chunks() == {2}

    def test_journal_is_json_safe(self):
        table = LeaseTable(timeout=5.0)
        table.grant(1, "a0", 0, "batched", now=0.0)
        journal = json.loads(json.dumps(table.journal()))
        assert journal["granted"] == 1
        assert journal["active"][0]["chunk"] == 1


# -- result cache --------------------------------------------------------------


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.lookup("f" * 64) is None
        cache.store("f" * 64, {"scheme": "pair"}, {"ok": 1, "ce": 2})
        hit = cache.lookup("f" * 64)
        assert hit["summary"] == {"ok": 1, "ce": 2}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("a" * 64, {}, {"ok": 1})
        (tmp_path / ("a" * 64 + ".json")).write_text("{torn")
        assert cache.lookup("a" * 64) is None

    def test_misfiled_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("b" * 64, {}, {"ok": 1})
        # an entry filed under the wrong fingerprint must never be trusted
        (tmp_path / ("c" * 64 + ".json")).write_text(
            (tmp_path / ("b" * 64 + ".json")).read_text()
        )
        assert cache.lookup("c" * 64) is None


# -- fleet chaos parsing -------------------------------------------------------


class TestFleetChaosParse:
    def test_grammar(self):
        chaos = FleetChaos.parse("kill:a0@1,hang:a1,slow:a2@2|4,partition:a0@3,"
                                 "drop:a1@5,dup:a2@0,reorder:a0@7,crash:4")
        assert chaos.kill == {"a0": frozenset({1})}
        assert chaos.hang == {"a1": frozenset({0})}  # no @: first lease
        assert chaos.slow == {"a2": frozenset({2, 4})}
        assert chaos.partition == {"a0": frozenset({3})}
        assert chaos.drop == {"a1": frozenset({5})}
        assert chaos.dup == {"a2": frozenset({0})}
        assert chaos.reorder == {"a0": frozenset({7})}
        assert chaos.crash_after == 4
        assert chaos.fires_kill("a0", 1) and not chaos.fires_kill("a0", 0)
        assert chaos.frame_dropped("a1", 5) and not chaos.frame_dropped("a1", 4)
        assert chaos.should_crash(4) and not chaos.should_crash(3)

    def test_rejects_unknown_kind_and_missing_agent(self):
        with pytest.raises(ValueError, match="unknown fleet chaos kind"):
            FleetChaos.parse("explode:a0")
        with pytest.raises(ValueError, match="names no agent"):
            FleetChaos.parse("kill:@1")


# -- scheduler unit behaviour --------------------------------------------------


class TestSchedulerGuards:
    def test_duplicate_mismatch_is_fatal(self, tmp_path):
        async def main():
            sched = FleetScheduler(tmp_path / "c", config(), policy=policy())
            spec = sched.plan.chunks[0]
            ok = {"type": "result", "chunk": 0, "lease_id": "",
                  "counts": [spec.trials, 0, 0, 0], "engine": "batched"}
            sched._on_result("a0", ok)
            assert 0 in sched.manifest.chunks
            # a second execution of the same deterministic chunk disagrees:
            # that is corruption, and the campaign must stop, not vote
            bad = dict(ok, counts=[spec.trials - 1, 1, 0, 0])
            sched._on_result("a1", bad)
            assert isinstance(sched._fatal, DuplicateMismatch)
            with pytest.raises(DuplicateMismatch):
                await sched.serve()

        asyncio.run(main())

    def test_identical_duplicate_dropped(self, tmp_path):
        sched = FleetScheduler(tmp_path / "c", config(), policy=policy())
        spec = sched.plan.chunks[0]
        frame = {"type": "result", "chunk": 0, "lease_id": "",
                 "counts": [spec.trials, 0, 0, 0], "engine": "batched"}
        sched._on_result("a0", frame)
        sched._on_result("a1", dict(frame))
        assert sched.duplicates_dropped == 1
        assert sched._fatal is None

    def test_invalid_counts_requeue_degraded(self, tmp_path):
        sched = FleetScheduler(tmp_path / "c", config(), policy=policy())
        chunk = sched._pop_ready(0.0)  # lease it out, as the wire would
        bad = {"type": "result", "chunk": chunk, "lease_id": "",
               "counts": [1, -1, 0, 0], "engine": "batched"}
        sched._on_result("a0", bad)
        assert chunk not in sched.manifest.chunks
        assert chunk in sched._pending  # requeued, not merged
        # a numerical failure degrades the retry engine, like the supervisor
        assert sched._chunk_state[chunk].engine == "sequential"
        assert sched._chunk_state[chunk].attempt == 1

    def test_restart_requires_matching_config(self, tmp_path):
        Manifest.create(tmp_path / "c", config().fingerprint_dict(),
                        total_chunks=4)
        with pytest.raises(EngineMismatch):
            FleetScheduler(tmp_path / "c", config(seed=8), policy=policy())


# -- end-to-end ----------------------------------------------------------------


class TestFleetEndToEnd:
    def test_plain_fleet_matches_single_process(self, tmp_path):
        ref = start_campaign(tmp_path / "ref", config())

        async def main():
            sched = FleetScheduler(tmp_path / "fleet", config(), policy=policy())
            serve = await _start(sched)
            host, port = sched.endpoint
            agents = [
                FleetAgent(f"a{i}", host=host, port=port, policy=agent_policy())
                for i in range(3)
            ]
            summaries = await asyncio.gather(*(a.run() for a in agents))
            result = await serve
            return result, summaries

        result, summaries = asyncio.run(main())
        assert result.complete
        assert counts(result.tally) == counts(ref.tally)
        assert sum(s.chunks_done for s in summaries) >= result.chunks_done
        assert all(s.saw_done for s in summaries)

    def test_degrades_to_in_process_supervisor_without_agents(self, tmp_path):
        ref = start_campaign(tmp_path / "ref", config())
        result = serve_campaign(
            tmp_path / "fleet", config(),
            policy=policy(degrade_after=0.2),
        )
        assert result.complete
        assert counts(result.tally) == counts(ref.tally)
        sidecar = json.loads((tmp_path / "fleet" / "fleet.json").read_text())
        assert sidecar["state"] == "complete"
        assert sidecar["agents_seen"] == []

    def test_work_stealing_first_result_wins(self, tmp_path):
        """A slow straggler's chunk is speculatively re-issued to an idle
        peer; whichever result lands first commits, the loser's duplicate
        is verified identical and dropped."""
        ref = start_campaign(tmp_path / "ref", config(trials=16, chunk=8))
        chaos = FleetChaos.parse("slow:slowpoke@0|1|2", slow_seconds=1.5)

        async def main():
            sched = FleetScheduler(
                tmp_path / "fleet", config(trials=16, chunk=8),
                policy=policy(lease_timeout=10.0, drain_grace=2.5),
            )
            serve = await _start(sched)
            host, port = sched.endpoint
            slowpoke = FleetAgent("slowpoke", host=host, port=port, chaos=chaos,
                                  policy=agent_policy())
            slow_task = asyncio.ensure_future(slowpoke.run())
            while len(sched.leases) == 0:  # slowpoke must hold a lease first
                await asyncio.sleep(0.01)
            thief = FleetAgent("thief", host=host, port=port,
                               policy=agent_policy())
            thief_summary = await thief.run()
            result = await serve
            await slow_task
            return sched, result, thief_summary

        sched, result, thief_summary = asyncio.run(main())
        assert result.complete
        assert counts(result.tally) == counts(ref.tally)
        assert sched.leases.stolen >= 1
        assert thief_summary.steals_run >= 1
        assert sched.duplicates_dropped >= 1  # the loser's identical result
        assert sched._fatal is None

    def test_dead_agent_leases_requeue(self, tmp_path):
        ref = start_campaign(tmp_path / "ref", config())
        chaos = FleetChaos.parse("kill:victim@0")

        async def main():
            sched = FleetScheduler(tmp_path / "fleet", config(), policy=policy())
            serve = await _start(sched)
            host, port = sched.endpoint
            victim = FleetAgent("victim", host=host, port=port, chaos=chaos,
                                policy=agent_policy())
            victim_task = asyncio.ensure_future(victim.run())
            survivor = FleetAgent("survivor", host=host, port=port,
                                  policy=agent_policy())
            summary = await survivor.run()
            result = await serve
            with pytest.raises(AgentKilled):
                await victim_task
            return result, summary

        result, summary = asyncio.run(main())
        assert result.complete
        assert counts(result.tally) == counts(ref.tally)
        # the victim never reported anything: the survivor did every chunk
        assert summary.chunks_done == result.chunks_done

    def test_agent_without_any_scheduler_fails(self):
        with pytest.raises(AgentFailure, match="could not reach"):
            asyncio.run(
                FleetAgent(
                    "a0", host="127.0.0.1", port=1,
                    policy=agent_policy(connect_timeout=0.3),
                ).run()
            )

    def test_fingerprint_mismatch_rejects_agent(self, tmp_path):
        async def main():
            sched = FleetScheduler(tmp_path / "c", config(), policy=policy())
            serve = await _start(sched)
            host, port = sched.endpoint
            stranger = FleetAgent("a0", host=host, port=port,
                                  policy=agent_policy())
            stranger._plan_fingerprint = "0" * 64  # claims another campaign
            with pytest.raises(AgentFailure, match="rejected"):
                await stranger.run()
            helper = FleetAgent("a1", host=host, port=port,
                                policy=agent_policy())
            await helper.run()
            return await serve

        result = asyncio.run(main())
        assert result.complete

    def test_result_cache_round_trip(self, tmp_path):
        result = serve_campaign(
            tmp_path / "fleet", config(),
            policy=policy(degrade_after=0.1),
            cache_dir=tmp_path / "cache",
        )
        assert result.complete
        fp = fingerprint(config().fingerprint_dict())
        hit = ResultCache(tmp_path / "cache").lookup(fp)
        assert hit is not None
        assert hit["summary"]["ok"] == result.tally.ok
        assert hit["summary"]["complete"] is True

    def test_fleet_status_surfaces_sidecar(self, tmp_path):
        serve_campaign(tmp_path / "c", config(), policy=policy(degrade_after=0.1))
        status = fleet_status(tmp_path / "c")
        assert status["complete"] is True
        assert status["fleet"]["state"] == "complete"
        assert status["fleet"]["leases"]["active"] == []


# -- the acceptance scenario ---------------------------------------------------


class TestChaosFleet:
    def test_kills_hangs_partition_crash_restart_steal_bit_identical(
        self, tmp_path
    ):
        """The PR's acceptance scenario, all at once: one agent is killed
        mid-lease, one goes silent past its lease and sends a late result,
        one works through a one-way partition, a frame gets duplicated on
        the wire, the scheduler crashes after 6 commits - and the restarted
        scheduler finishes the campaign with a fresh crew whose straggler
        gets a chunk stolen, with the merged tally bit-identical to an
        uninterrupted single-process run."""
        cfg = config(trials=96, chunk=8, seed=11)  # 12 chunks
        ref = start_campaign(tmp_path / "ref", cfg)

        chaos = FleetChaos.parse(
            "kill:a0@1,hang:a1@0,partition:a2@0,slow:a2@2|3|4,"
            "dup:a1@4,crash:6",
            hang_seconds=1.2, slow_seconds=1.5,
        )
        pol = policy(lease_timeout=1.0, retries=4)
        # the restart crew: b0 straggles on every lease it gets, so once b1
        # drains the queue the only way to finish is to steal from b0; the
        # long lease keeps the slow path a steal, not an expiry, and the
        # drain grace outlives b0's late duplicate so dedupe (not a dead
        # socket) absorbs it
        steal_chaos = FleetChaos.parse(
            "slow:b0@0|1|2|3|4|5|6|7|8|9", slow_seconds=1.5,
        )
        pol2 = policy(lease_timeout=10.0, retries=4, drain_grace=2.5)

        async def main():
            d = tmp_path / "fleet"
            s1 = FleetScheduler(d, cfg, policy=pol, chaos=chaos)
            serve1 = await _start(s1)
            agents = {
                name: asyncio.ensure_future(
                    FleetAgent(name, directory=d, chaos=chaos,
                               policy=agent_policy(connect_timeout=1.0)).run())
                for name in ("a0", "a1", "a2")
            }
            with pytest.raises(CampaignAborted):
                await serve1
            # first crew winds down against the dead endpoint (the killed
            # agent surfaces its fault, the others exit cleanly)
            outcomes = await asyncio.gather(*agents.values(),
                                            return_exceptions=True)
            # the manifest on disk is consistent mid-crash: a restarted
            # scheduler re-derives exactly the missing chunks, and agents
            # re-find it through the refreshed fleet.json sidecar
            s2 = FleetScheduler(d, policy=pol2)
            serve2 = await _start(s2)
            b0 = FleetAgent("b0", directory=d, chaos=steal_chaos,
                            policy=agent_policy())
            b0_task = asyncio.ensure_future(b0.run())
            while len(s2.leases) == 0:  # b0 must hold a lease first
                await asyncio.sleep(0.01)
            b1 = FleetAgent("b1", directory=d, policy=agent_policy())
            await b1.run()
            result = await serve2
            await b0_task
            return s1, s2, result, outcomes

        s1, s2, result, outcomes = asyncio.run(main())

        assert result.complete
        assert counts(result.tally) == counts(ref.tally)  # the whole point
        # the kill actually fired and took its agent down
        assert any(isinstance(o, AgentKilled) for o in outcomes)
        # the hang/partition leases lapsed without a heartbeat and requeued
        assert s1.leases.expired >= 1
        # the restarted scheduler stole the straggler's chunk to finish
        assert s2.leases.stolen >= 1
        # nothing disagreed: every duplicate was verified identical
        assert s1._fatal is None and s2._fatal is None
        # every failure was transient: retries absorbed all of it
        assert not result.quarantined

    def test_crash_leaves_manifest_resumable_by_single_process(self, tmp_path):
        """A fleet crash is recoverable by the *single-process* resume path
        too: the manifest substrate is shared, so an operator can finish a
        wedged fleet campaign locally."""
        cfg = config()
        ref = start_campaign(tmp_path / "ref", cfg)
        chaos = FleetChaos.parse("crash:2")

        async def main():
            sched = FleetScheduler(tmp_path / "c", cfg, policy=policy(),
                                   chaos=chaos)
            serve = await _start(sched)
            host, port = sched.endpoint
            agent_task = asyncio.ensure_future(
                FleetAgent("a0", host=host, port=port,
                           policy=agent_policy(connect_timeout=0.5)).run())
            with pytest.raises(CampaignAborted):
                await serve
            await agent_task  # joined, scheduler gone: exits cleanly

        asyncio.run(main())
        result = resume_campaign(tmp_path / "c")
        assert result.complete
        assert counts(result.tally) == counts(ref.tally)
