"""Chaos schedule parsing and worker-side hooks (the harness itself)."""

import pytest

from repro.campaign.chaos import ChaosInjected, ChaosSchedule
from repro.reliability import Tally


class TestParse:
    def test_default_attempt_zero(self):
        schedule = ChaosSchedule.parse("crash:1,hang:2")
        assert schedule.crash == {1: frozenset({0})}
        assert schedule.hang == {2: frozenset({0})}
        assert schedule.abort_after is None

    def test_explicit_attempts(self):
        schedule = ChaosSchedule.parse("crash:3@0|2,corrupt:1@1")
        assert schedule.crash == {3: frozenset({0, 2})}
        assert schedule.corrupt == {1: frozenset({1})}

    def test_abort(self):
        assert ChaosSchedule.parse("abort:5").abort_after == 5

    def test_empty_items_ignored(self):
        schedule = ChaosSchedule.parse("crash:0, ,")
        assert schedule.crash == {0: frozenset({0})}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosSchedule.parse("explode:1")

    def test_malformed_item_rejected(self):
        with pytest.raises(ValueError, match="bad chaos item"):
            ChaosSchedule.parse("crash")


class TestHooks:
    def test_raise_fires_only_on_batched_engine(self):
        schedule = ChaosSchedule.parse("raise:4")
        with pytest.raises(ChaosInjected):
            schedule.fire_pre_execute(4, 0, "batched")
        with pytest.raises(ChaosInjected):  # any attempt, same kernel bug
            schedule.fire_pre_execute(4, 3, "batched")
        schedule.fire_pre_execute(4, 0, "sequential")  # fallback passes

    def test_unscheduled_chunk_untouched(self):
        schedule = ChaosSchedule.parse("raise:4,corrupt:2")
        schedule.fire_pre_execute(0, 0, "batched")
        tally = Tally(ok=8)
        assert schedule.corrupt_tally(0, 0, tally) is tally

    def test_corrupt_makes_tally_invalid(self):
        schedule = ChaosSchedule.parse("corrupt:2")
        bad = schedule.corrupt_tally(2, 0, Tally(ok=8))
        assert bad.sdc == -1
        assert schedule.corrupt_tally(2, 1, Tally(ok=8)).sdc == 0  # attempt 1 clean

    def test_should_abort_threshold(self):
        schedule = ChaosSchedule.parse("abort:2")
        assert not schedule.should_abort(1)
        assert schedule.should_abort(2)
        assert schedule.should_abort(3)
        assert not ChaosSchedule().should_abort(10)

    def test_deterministic_by_construction(self):
        # Two parses of the same spec behave identically on every key.
        a = ChaosSchedule.parse("crash:1,hang:2@1,raise:3,corrupt:0,abort:9")
        b = ChaosSchedule.parse("crash:1,hang:2@1,raise:3,corrupt:0,abort:9")
        assert a == b
