"""Unit tests for the metrics registry: instruments, snapshots, merges."""

import pytest

from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    Histogram,
    Registry,
    SNAPSHOT_VERSION,
    merge_snapshots,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = Registry()
        c = reg.counter("x")
        c.add()
        c.add(4)
        assert c.value == 5
        assert reg.counter("x") is c

    def test_gauge_last_wins(self):
        reg = Registry()
        g = reg.gauge("x")
        g.set(1.5)
        g.set(0.25)
        assert g.value == 0.25

    def test_histogram_buckets_values(self):
        h = Histogram("h", [1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.total == 4
        assert h.min == 0.5 and h.max == 500.0
        assert h.mean == pytest.approx(555.5 / 4)

    def test_histogram_edge_is_inclusive(self):
        h = Histogram("h", [1.0, 10.0])
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", [10.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", [])


class TestRegistryLifecycle:
    def test_reset_zeroes_in_place(self):
        """Handles cached before a reset must keep recording after it -
        instrumentation modules register theirs once at import time."""
        reg = Registry()
        c = reg.counter("c")
        h = reg.histogram("h", DURATION_BUCKETS_S)
        c.add(3)
        h.observe(0.1)
        reg.reset()
        assert c.value == 0 and h.total == 0
        c.add(1)
        h.observe(0.2)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["histograms"]["h"]["total"] == 1

    def test_snapshot_omits_idle_instruments(self):
        reg = Registry()
        reg.counter("never")
        reg.histogram("empty", [1.0])
        reg.counter("used").add(1)
        snap = reg.snapshot("lbl")
        assert snap["kind"] == "metrics"
        assert snap["version"] == SNAPSHOT_VERSION
        assert snap["label"] == "lbl"
        assert snap["counters"] == {"used": 1}
        assert snap["histograms"] == {}


class TestMerge:
    def make_snapshot(self, count, values):
        reg = Registry()
        reg.counter("c").add(count)
        reg.gauge("g").set(count)
        h = reg.histogram("h", [1.0, 10.0])
        for v in values:
            h.observe(v)
        return reg.snapshot()

    def test_merge_is_commutative(self):
        a = self.make_snapshot(2, [0.5, 5.0])
        b = self.make_snapshot(7, [50.0])
        ab = merge_snapshots([a, b])
        ba = merge_snapshots([b, a])
        assert ab["counters"] == ba["counters"] == {"c": 9}
        assert ab["histograms"] == ba["histograms"]
        assert ab["histograms"]["h"]["counts"] == [1, 1, 1]
        assert ab["histograms"]["h"]["total"] == 3
        assert ab["histograms"]["h"]["min"] == 0.5
        assert ab["histograms"]["h"]["max"] == 50.0

    def test_absorb_rejects_mismatched_bounds(self):
        reg = Registry()
        reg.histogram("h", [1.0]).observe(0.5)
        bad = Registry()
        bad.histogram("h", [2.0]).observe(0.5)
        with pytest.raises(ValueError):
            reg.absorb(bad.snapshot())

    def test_merge_skips_non_metrics_snapshots(self):
        a = self.make_snapshot(1, [])
        merged = merge_snapshots([a, {"kind": "spans", "aggregates": {}}, {}])
        assert merged["counters"] == {"c": 1}

    def test_empty_histogram_does_not_poison_min_max(self):
        reg = Registry()
        reg.counter("c").add(1)
        a = reg.snapshot()
        b = self.make_snapshot(1, [5.0])
        merged = merge_snapshots([a, b])
        assert merged["histograms"]["h"]["min"] == 5.0
