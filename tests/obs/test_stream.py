"""Delta streaming substrate: round-trips, loss semantics, ring bounds.

The fleet's live telemetry is only trustworthy if the encode/merge pair
holds three properties under an adversarial network: applying every frame
(in any order, with duplicates) reconstructs the registry exactly;
dropping frames undercounts by exactly the dropped increments and the gap
counter says so; and a mid-stream registry reset never produces negative
deltas.  Those properties get Hypothesis inputs, not examples.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DELTA_KIND,
    DeltaEncoder,
    Registry,
    SeriesRing,
    StreamMerger,
    frame_is_empty,
)

BOUNDS = (1.0, 10.0, 100.0)


def fill(registry, counters=(), gauges=(), observations=()):
    for name, amount in counters:
        registry.counter(name).add(amount)
    for name, value in gauges:
        registry.gauge(name).set(value)
    for value in observations:
        registry.histogram("lat", BOUNDS).observe(value)


class TestDeltaEncoder:
    def test_frames_carry_stream_identity(self):
        registry = Registry()
        encoder = DeltaEncoder("w0", registry=registry)
        fill(registry, counters=[("c", 3)])
        frame = encoder.delta("chunk-0")
        assert frame["kind"] == DELTA_KIND
        assert frame["source"] == "w0"
        assert frame["seq"] == 0
        assert frame["label"] == "chunk-0"
        assert frame["counters"] == {"c": 3}
        assert encoder.delta()["seq"] == 1

    def test_deltas_are_increments_not_totals(self):
        registry = Registry()
        encoder = DeltaEncoder("w0", registry=registry)
        fill(registry, counters=[("c", 3)])
        assert encoder.delta()["counters"] == {"c": 3}
        fill(registry, counters=[("c", 4)])
        assert encoder.delta()["counters"] == {"c": 4}  # not 7
        # no movement -> empty frame, skippable on the wire
        assert frame_is_empty(encoder.delta())

    def test_registry_reset_yields_full_value_not_negative(self):
        registry = Registry()
        encoder = DeltaEncoder("w0", registry=registry)
        fill(registry, counters=[("c", 10)], observations=[2.0, 20.0])
        encoder.delta()
        registry.reset()  # agent finished a chunk and started fresh
        fill(registry, counters=[("c", 4)], observations=[5.0])
        frame = encoder.delta()
        assert frame["counters"] == {"c": 4}
        assert frame["histograms"]["lat"]["total"] == 1
        assert all(n >= 0 for n in frame["histograms"]["lat"]["counts"])

    def test_histogram_delta_ships_bucket_increments(self):
        registry = Registry()
        encoder = DeltaEncoder("w0", registry=registry)
        fill(registry, observations=[0.5, 5.0])
        encoder.delta()
        fill(registry, observations=[50.0])
        frame = encoder.delta()
        hist = frame["histograms"]["lat"]
        assert hist["total"] == 1
        assert sum(hist["counts"]) == 1
        assert hist["bounds"] == list(BOUNDS)


class TestStreamMerger:
    def encode_stream(self, source, chunks):
        """One agent's frames for a list of per-chunk counter dicts."""
        registry = Registry()
        encoder = DeltaEncoder(source, registry=registry)
        frames = []
        for chunk in chunks:
            fill(registry, counters=list(chunk.items()))
            frames.append(encoder.delta())
        return frames

    def test_duplicates_apply_once(self):
        merger = StreamMerger()
        (frame,) = self.encode_stream("w0", [{"c": 5}])
        assert merger.apply(frame) is True
        assert merger.apply(dict(frame)) is False
        assert merger.snapshot()["counters"] == {"c": 5}
        assert merger.stats()["w0"]["duplicates"] == 1

    def test_garbage_frames_rejected_not_raised(self):
        merger = StreamMerger()
        assert merger.apply({"kind": "other"}) is False
        assert merger.apply({"kind": DELTA_KIND}) is False  # no source
        assert merger.apply(
            {"kind": DELTA_KIND, "source": "w0", "seq": -1}
        ) is False
        assert merger.apply(
            {"kind": DELTA_KIND, "source": "w0", "seq": "nope"}
        ) is False

    def test_gap_accounting_counts_missing_frames(self):
        merger = StreamMerger()
        frames = self.encode_stream("w0", [{"c": 1}] * 5)
        for frame in (frames[0], frames[2], frames[4]):  # 1 and 3 dropped
            merger.apply(frame)
        assert merger.stats()["w0"] == {
            "frames": 3, "duplicates": 0, "gaps": 2, "last_seq": 4,
        }
        # advisory loss: undercounts by exactly the dropped increments
        assert merger.snapshot()["counters"]["c"] == 3

    def test_gauge_reorder_newest_seq_wins(self):
        registry = Registry()
        encoder = DeltaEncoder("w0", registry=registry)
        registry.gauge("g").set(1.0)
        first = encoder.delta()
        registry.gauge("g").set(2.0)
        second = encoder.delta()
        merger = StreamMerger()
        merger.apply(second)
        merger.apply(first)  # stale write arrives late
        assert merger.snapshot()["gauges"]["g"] == 2.0

    def test_multi_source_streams_merge(self):
        merger = StreamMerger()
        for frame in self.encode_stream("w0", [{"c": 2}]):
            merger.apply(frame)
        for frame in self.encode_stream("w1", [{"c": 3}]):
            merger.apply(frame)
        assert merger.snapshot()["counters"]["c"] == 5
        assert merger.sources() == ["w0", "w1"]
        assert merger.counter_total("w0", "c") == 2
        assert merger.counter_total("w1", "c") == 3

    def test_tracked_series_receiver_stamped(self):
        merger = StreamMerger(tracked_series=("c",))
        frames = self.encode_stream("w0", [{"c": 2}, {"c": 3}])
        merger.apply(frames[0], at=10.0)
        merger.apply(frames[1], at=11.0)
        ring = merger.series("w0", "c")
        assert ring.points() == [(10.0, 2.0), (11.0, 5.0)]
        assert merger.series("w0", "unknown") is None
        assert merger.series("w9", "c") is None

    @given(
        chunks=st.lists(
            st.dictionaries(
                keys=st.sampled_from(["a", "b", "c"]),
                values=st.integers(min_value=1, max_value=100),
                min_size=1, max_size=3,
            ),
            min_size=1, max_size=8,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
        dup_every=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_shuffled_duplicated_stream_reconstructs_registry(
        self, chunks, seed, dup_every
    ):
        """Applying every frame - any order, with duplicates - equals the
        encoder-side registry exactly; gaps read 0."""
        registry = Registry()
        encoder = DeltaEncoder("w0", registry=registry)
        frames = []
        for chunk in chunks:
            fill(registry, counters=list(chunk.items()))
            frames.append(encoder.delta())
        wire = list(frames) + [
            dict(f) for i, f in enumerate(frames) if i % dup_every == 0
        ]
        random.Random(seed).shuffle(wire)
        merger = StreamMerger()
        for frame in wire:
            merger.apply(frame)
        assert (
            merger.snapshot()["counters"]
            == registry.snapshot()["counters"]
        )
        assert merger.stats()["w0"]["gaps"] == 0
        assert merger.stats()["w0"]["frames"] == len(frames)

    @given(
        observations=st.lists(
            st.lists(st.floats(min_value=0.0, max_value=500.0,
                               allow_nan=False),
                     min_size=0, max_size=4),
            min_size=1, max_size=6,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_shuffled_histogram_stream_reconstructs_buckets(
        self, observations, seed
    ):
        registry = Registry()
        encoder = DeltaEncoder("w0", registry=registry)
        frames = []
        for batch in observations:
            fill(registry, observations=batch)
            frames.append(encoder.delta())
        random.Random(seed).shuffle(frames)
        merger = StreamMerger()
        for frame in frames:
            merger.apply(frame)
        want = registry.snapshot().get("histograms", {})
        got = merger.snapshot().get("histograms", {})
        if not want:
            assert not got
        else:
            assert got["lat"]["counts"] == want["lat"]["counts"]
            assert got["lat"]["total"] == want["lat"]["total"]


class TestSeriesRing:
    def test_overflow_sheds_oldest_and_counts_drops(self):
        ring = SeriesRing(maxlen=3)
        for i in range(5):
            ring.append(float(i), float(i * 10))
        assert len(ring) == 3
        assert ring.dropped == 2
        assert ring.points()[0] == (2.0, 20.0)
        assert ring.last() == (4.0, 40.0)

    def test_rate_over_trailing_window(self):
        ring = SeriesRing()
        for t in range(10):  # cumulative counter rising 5/s
            ring.append(float(t), float(t * 5))
        assert ring.rate(window_s=4.0) == 5.0
        assert ring.rate(window_s=100.0) == 5.0

    def test_rate_degenerate_cases(self):
        ring = SeriesRing()
        assert ring.rate(5.0) == 0.0
        ring.append(1.0, 1.0)
        assert ring.rate(5.0) == 0.0
        ring.append(1.0, 2.0)  # zero elapsed time
        assert ring.rate(5.0) == 0.0
