"""The obs contract that matters most: results never change.

Every instrumentation site sits outside the engines' random streams, so a
seeded run must produce bit-identical tallies whether observability is off,
on, or toggled mid-suite.  These tests run the real engines both ways and
compare exact counts - any guard placed on the wrong side of an RNG draw
breaks them.
"""

from repro import obs
from repro.dram import AddressMapper, RANK_X8_5CHIP
from repro.faults import FaultRates
from repro.perf import WORKLOADS, generate_trace, simulate
from repro.reliability import ExactRunConfig, run_iid_batched
from repro.schemes import PairScheme


def rates(ber):
    return FaultRates(
        single_cell_ber=ber, row_faults_per_device=0.0, column_faults_per_device=0.0,
        pin_faults_per_device=0.0, mat_faults_per_device=0.0,
        transfer_burst_per_access=0.0,
    )


def run_tally():
    tally = run_iid_batched(
        PairScheme(), rates(3e-4), ExactRunConfig(trials=40, seed=9)
    )
    return (tally.ok, tally.ce, tally.due, tally.sdc)


class TestEnginesBitIdentical:
    def test_batched_mc_ignores_obs_state(self):
        with obs.enabled_scope(False):
            off = run_tally()
        with obs.enabled_scope(True):
            on = run_tally()
        assert off == on
        # and the instrumented run actually recorded something
        assert obs.snapshot()["counters"].get("reliability.chunks", 0) > 0

    def test_timing_sim_ignores_obs_state(self):
        trace = generate_trace(WORKLOADS["balanced"], AddressMapper(RANK_X8_5CHIP))

        def run():
            res = simulate(trace, PairScheme().timing_overlay, "pair", "balanced")
            return (res.total_cycles, res.read_latency_mean, res.row_hit_rate)

        with obs.enabled_scope(False):
            off = run()
        with obs.enabled_scope(True):
            on = run()
        assert off == on


class TestDisabledIsSilent:
    def test_disabled_run_records_nothing(self):
        run_tally()
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}
        assert obs.finished_spans() == []
