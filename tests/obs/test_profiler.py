"""Unit tests for the sampling profiler: machinery only, no timing asserts."""

import pytest

from repro.obs.profiler import SamplingProfiler, busy_wait, profile_scope


class TestLifecycle:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_double_start_rejected(self):
        prof = SamplingProfiler(interval=0.001)
        prof.start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()

    def test_stop_without_start_is_safe(self):
        SamplingProfiler().stop()


class TestSampling:
    def test_busy_loop_is_seen(self):
        with profile_scope(interval=0.001) as prof:
            busy_wait(0.2)
        assert prof.samples > 0
        # the spin loop itself must appear as a leaf frame
        assert any("busy_wait" in key for key in prof.leaf)
        # cumulative counts include every frame on the stack, so the test
        # function shows up there even though it is never the leaf
        assert any("test_profiler" in key for key in prof.cumulative)

    def test_snapshot_shape(self):
        with profile_scope(interval=0.001) as prof:
            busy_wait(0.05)
        snap = prof.snapshot("lbl", top=5)
        assert snap["kind"] == "profile"
        assert snap["label"] == "lbl"
        assert snap["samples"] == prof.samples
        assert len(snap["self"]) <= 5
        assert all(isinstance(v, int) for v in snap["self"].values())
