"""Unit tests for the obs export layer: jsonl round-trip and summarize."""

import json

import pytest

from repro import obs
from repro.obs.export import format_report, read_snapshots, summarize, write_snapshots


def metrics_snap(count):
    reg = obs.Registry()
    reg.counter("c").add(count)
    return reg.snapshot()


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        snaps = [metrics_snap(1), metrics_snap(2)]
        assert write_snapshots(path, snaps) == path
        assert read_snapshots(path) == snaps

    def test_append_keeps_prior_lines(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        write_snapshots(path, [metrics_snap(1)])
        write_snapshots(path, [metrics_snap(2)], append=True)
        assert [s["counters"]["c"] for s in read_snapshots(path)] == [1, 2]

    def test_without_append_overwrites(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        write_snapshots(path, [metrics_snap(1)])
        write_snapshots(path, [metrics_snap(2)])
        assert [s["counters"]["c"] for s in read_snapshots(path)] == [2]

    def test_corrupt_line_is_reported_with_position(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        path.write_text(json.dumps(metrics_snap(1)) + "\n{nope\n")
        with pytest.raises(ValueError, match="obs.jsonl:2"):
            read_snapshots(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        path.write_text("\n" + json.dumps(metrics_snap(3)) + "\n\n")
        assert len(read_snapshots(path)) == 1


class TestSummarize:
    def test_merges_metrics_and_folds_spans(self):
        obs.enable()
        obs.record_span("work", 1.0)
        obs.record_span("work", 3.0)
        report = summarize([metrics_snap(1), metrics_snap(2), obs.spans_snapshot()])
        assert report["kind"] == "obs_report"
        assert report["snapshots"] == 3
        assert report["counters"] == {"c": 3}
        agg = report["spans"]["aggregates"]["work"]
        assert agg["count"] == 2 and agg["mean_s"] == 2.0
        assert report["profile"] is None

    def test_keeps_last_profile(self):
        profiles = [
            {"kind": "profile", "label": str(i), "samples": i,
             "interval_s": 0.01, "self": {}, "cumulative": {}}
            for i in (1, 2)
        ]
        report = summarize(profiles)
        assert report["profile"]["label"] == "2"

    def test_format_report_renders_every_section(self):
        obs.enable()
        obs.counter("hits").add(2)
        obs.gauge("level").set(0.5)
        obs.histogram("sizes", [1.0, 10.0]).observe(4.0)
        obs.record_span("work", 1.5)
        text = format_report(summarize([obs.snapshot(), obs.spans_snapshot()]))
        for fragment in ("counters:", "gauges:", "histograms:", "spans:",
                         "hits", "level", "sizes", "work"):
            assert fragment in text

    def test_format_report_empty_hints_at_enablement(self):
        text = format_report(summarize([]))
        assert "was obs enabled?" in text
