"""OpenMetrics exposition: render/parse round-trips and spec conformance.

The scheduler's ``/metrics`` endpoint is only useful if a real scraper can
ingest it, so these tests pin the spec-visible shape: ``_total`` suffixes
on counters, cumulative histogram buckets ending in ``+Inf``, labelled
derived families, and the mandatory ``# EOF`` terminator (whose absence
must make the bundled parser - and hence the CI smoke - fail loudly).
"""

import math

import pytest

from repro.obs import (
    Registry,
    metric_name,
    parse_openmetrics,
    render_openmetrics,
)


def sample_snapshot():
    registry = Registry()
    registry.counter("campaign.chunks_ok").add(7)
    registry.gauge("rareevent.ess").set(12.5)
    hist = registry.histogram("rs.decode.t", (0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    return registry.snapshot(label="test")


class TestMetricName:
    def test_dotted_names_sanitized_and_prefixed(self):
        assert metric_name("campaign.chunks_ok") == "repro_campaign_chunks_ok"
        assert metric_name("a-b c.d") == "repro_a_b_c_d"

    def test_leading_digit_guarded(self):
        assert metric_name("2x", prefix="") == "_2x"


class TestRender:
    def test_counters_get_total_suffix(self):
        text = render_openmetrics(sample_snapshot())
        assert "# TYPE repro_campaign_chunks_ok counter" in text
        assert "repro_campaign_chunks_ok_total 7" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_openmetrics(sample_snapshot())
        assert 'repro_rs_decode_t_bucket{le="0.1"} 1' in text
        assert 'repro_rs_decode_t_bucket{le="1"} 2' in text
        assert 'repro_rs_decode_t_bucket{le="+Inf"} 3' in text
        assert "repro_rs_decode_t_count 3" in text

    def test_ends_with_eof(self):
        assert render_openmetrics(None).endswith("# EOF\n")
        assert render_openmetrics(sample_snapshot()).endswith("# EOF\n")

    def test_labelled_family_rendering(self):
        text = render_openmetrics(None, families=[{
            "name": "fleet.agent.chunk_rate", "type": "gauge",
            "help": "per-agent rate",
            "samples": [({"agent": "w0"}, 1.5), ({"agent": "w1"}, 0.0)],
        }])
        assert "# HELP repro_fleet_agent_chunk_rate per-agent rate" in text
        assert 'repro_fleet_agent_chunk_rate{agent="w0"} 1.5' in text
        assert 'repro_fleet_agent_chunk_rate{agent="w1"} 0' in text

    def test_label_values_escaped(self):
        text = render_openmetrics(None, families=[{
            "name": "x", "type": "gauge",
            "samples": [({"agent": 'a"b\\c\nd'}, 1.0)],
        }])
        assert '{agent="a\\"b\\\\c\\nd"}' in text


class TestParse:
    def test_roundtrip_folds_suffixes_back(self):
        parsed = parse_openmetrics(render_openmetrics(sample_snapshot()))
        assert parsed["repro_campaign_chunks_ok"]["type"] == "counter"
        ((labels, value),) = parsed["repro_campaign_chunks_ok"]["samples"]
        assert labels["__sample__"] == "total"
        assert value == 7
        hist = parsed["repro_rs_decode_t"]
        assert hist["type"] == "histogram"
        buckets = [
            (labels["le"], value)
            for labels, value in hist["samples"]
            if labels.get("__sample__") == "bucket"
        ]
        assert buckets == [("0.1", 1.0), ("1", 2.0), ("+Inf", 3.0)]

    def test_roundtrip_labelled_family(self):
        text = render_openmetrics(None, families=[{
            "name": "fleet.agent.chunk_rate", "type": "gauge",
            "samples": [({"agent": "w0"}, 1.5)],
        }])
        parsed = parse_openmetrics(text)
        ((labels, value),) = parsed["repro_fleet_agent_chunk_rate"]["samples"]
        assert labels == {"agent": "w0"}
        assert value == 1.5

    def test_inf_values(self):
        parsed = parse_openmetrics("x +Inf\n# EOF\n")
        assert parsed["x"]["samples"][0][1] == math.inf

    def test_missing_eof_raises(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("repro_x_total 1\n")

    def test_truncated_mid_line_raises(self):
        text = render_openmetrics(sample_snapshot())
        with pytest.raises(ValueError):
            parse_openmetrics(text[: len(text) // 2])

    def test_content_after_eof_raises(self):
        with pytest.raises(ValueError, match="after"):
            parse_openmetrics("# EOF\nx 1\n")

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics("this is not exposition\n# EOF\n")
