"""The mission-control dashboard: rendering, sources, and the drive loop.

``obs top`` must render any watch payload (including degenerate ones)
without raising, honour ``--no-color`` byte-for-byte, tolerate a torn
final line in a recorded event log, and exit its loop on terminal fleet
states - all checkable without a live scheduler.
"""

import io
import json

import pytest

from repro.obs import (
    load_watch_dir,
    load_watch_events,
    render_dashboard,
    run_top,
)
from repro.obs.top import STRAGGLER_FLAG, _fmt_eta


def watch_payload(**overrides):
    payload = {
        "kind": "fleet_watch",
        "version": 2,
        "state": "serving",
        "chunks_done": 3,
        "total_chunks": 10,
        "backlog": 7,
        "quarantined": 0,
        "fleet_rate": 2.5,
        "eta_s": 2.8,
        "lease_churn": {"active": 2, "granted": 5, "expired": 1, "stolen": 1},
        "telemetry_frames": 12,
        "agents": {
            "w0": {"chunk_rate": 2.0, "straggler_score": 0.9,
                   "chunks_done": 2, "last_seen_age_s": 0.1,
                   "stream": {"frames": 6, "duplicates": 0, "gaps": 1,
                              "last_seq": 6}},
            "w1": {"chunk_rate": 0.5, "straggler_score": 2.1,
                   "chunks_done": 1, "last_seen_age_s": 1.2,
                   "stream": {"frames": 6, "duplicates": 1, "gaps": 0,
                              "last_seq": 5}},
        },
        "counters": {"reliability.trials": 768, "campaign.chunks_ok": 3},
        "gauges": {"rareevent.ess": 37.2, "rareevent.weight_cv2": 0.41},
    }
    payload.update(overrides)
    return payload


class TestRenderDashboard:
    def test_panels_present(self):
        text = render_dashboard(watch_payload(), color=False)
        assert "repro fleet telemetry" in text
        assert "state=serving" in text
        assert "chunks 3/10" in text
        assert "w0" in text and "w1" in text
        assert "ESS" in text and "37.2" in text
        assert "7 pending" in text
        assert "1 stolen" in text
        assert "reliability.trials" in text

    def test_straggler_flagged(self):
        assert STRAGGLER_FLAG <= 2.1
        text = render_dashboard(watch_payload(), color=False)
        flagged = [line for line in text.splitlines() if "<< straggler" in line]
        assert len(flagged) == 1 and "w1" in flagged[0]

    def test_no_color_means_no_escapes(self):
        assert "\x1b[" not in render_dashboard(watch_payload(), color=False)
        assert "\x1b[" in render_dashboard(watch_payload(), color=True)

    def test_empty_payload_renders(self):
        text = render_dashboard({}, color=False)
        assert "no agents reporting" in text
        assert "no rare-event stream" in text

    def test_eta_formatting(self):
        assert _fmt_eta(None) == "--"
        assert _fmt_eta(12.0) == "12.0s"
        assert _fmt_eta(90.0) == "1.5m"
        assert _fmt_eta(7200.0) == "2.0h"


class TestSources:
    def test_load_watch_dir(self, tmp_path):
        payload = watch_payload()
        (tmp_path / "fleet.json").write_text(
            json.dumps({"state": "serving", "telemetry": payload})
        )
        assert load_watch_dir(tmp_path) == payload

    def test_load_watch_dir_missing_or_pretelemetry(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_watch_dir(tmp_path)
        (tmp_path / "fleet.json").write_text(json.dumps({"state": "serving"}))
        with pytest.raises(FileNotFoundError, match="telemetry"):
            load_watch_dir(tmp_path)

    def test_load_watch_events_takes_last(self, tmp_path):
        log = tmp_path / "events.jsonl"
        lines = [
            json.dumps({"event": "watch", "payload": watch_payload(chunks_done=1)}),
            json.dumps({"event": "lease_grant", "agent": "w0"}),
            json.dumps({"event": "watch", "payload": watch_payload(chunks_done=2)}),
        ]
        log.write_text("\n".join(lines) + "\n")
        assert load_watch_events(log)["chunks_done"] == 2

    def test_load_watch_events_tolerates_torn_tail(self, tmp_path):
        log = tmp_path / "events.jsonl"
        good = json.dumps({"event": "watch", "payload": watch_payload()})
        log.write_text(good + "\n" + '{"event": "watch", "payl')
        assert load_watch_events(log)["chunks_done"] == 3

    def test_load_watch_events_rejects_corrupt_middle(self, tmp_path):
        log = tmp_path / "events.jsonl"
        good = json.dumps({"event": "watch", "payload": watch_payload()})
        log.write_text("not json\n" + good + "\n")
        with pytest.raises(json.JSONDecodeError):
            load_watch_events(log)

    def test_load_watch_events_no_watch_events(self, tmp_path):
        log = tmp_path / "events.jsonl"
        log.write_text(json.dumps({"event": "serve_start"}) + "\n")
        with pytest.raises(FileNotFoundError, match="no watch events"):
            load_watch_events(log)


class TestRunTop:
    def test_once_renders_single_frame(self):
        out = io.StringIO()
        code = run_top(lambda: watch_payload(), once=True, color=False, out=out)
        assert code == 0
        assert out.getvalue().count("repro fleet telemetry") == 1

    def test_json_mode_emits_payload(self):
        out = io.StringIO()
        code = run_top(lambda: watch_payload(), once=True, as_json=True, out=out)
        assert code == 0
        assert json.loads(out.getvalue())["kind"] == "fleet_watch"

    def test_loop_exits_on_terminal_state(self):
        payloads = iter([
            watch_payload(state="serving"),
            watch_payload(state="complete", chunks_done=10),
        ])
        out = io.StringIO()
        code = run_top(lambda: next(payloads), color=False, interval_s=0.0,
                       out=out)
        assert code == 0
        assert out.getvalue().count("repro fleet telemetry") == 2

    def test_fetch_failure_exits_nonzero(self, capsys):
        def fetch():
            raise ConnectionError("nobody home")

        assert run_top(fetch, once=True, out=io.StringIO()) == 1
        assert "nobody home" in capsys.readouterr().err

    def test_iterations_bounds_loop(self):
        out = io.StringIO()
        code = run_top(lambda: watch_payload(), color=False, interval_s=0.0,
                       iterations=3, out=out)
        assert code == 0
        assert out.getvalue().count("repro fleet telemetry") == 3
