"""Every obs test starts from a disabled, empty registry and leaves it so."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_all()
    obs.disable()
    yield
    obs.reset_all()
    obs.disable()
