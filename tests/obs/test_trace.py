"""Unit tests for span tracing: gating, nesting, retention, snapshots."""

from repro import obs
from repro.obs import trace


class TestGating:
    def test_span_is_noop_when_disabled(self):
        with trace.span("work") as rec:
            assert rec is None
        assert trace.finished_spans() == []

    def test_record_span_is_noop_when_disabled(self):
        assert trace.record_span("work", 1.0) is None
        assert trace.finished_spans() == []


class TestSpans:
    def test_span_records_duration_and_attrs(self):
        obs.enable()
        with trace.span("work", chunk=3) as rec:
            assert rec is not None
        spans = trace.finished_spans()
        assert [s.name for s in spans] == ["work"]
        assert spans[0].duration >= 0.0
        assert spans[0].attrs == {"chunk": 3}

    def test_nesting_sets_depth_and_parent(self):
        obs.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        inner, outer = sorted(trace.finished_spans(), key=lambda s: s.name)
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == "outer"

    def test_record_span_stores_external_duration(self):
        obs.enable()
        rec = trace.record_span("chunk", 2.5, attempt=1)
        assert rec is not None
        assert rec.as_dict()["duration_s"] == 2.5
        assert trace.finished_spans() == [rec]


class TestRetention:
    def test_ring_bounds_memory_and_counts_drops(self):
        obs.enable()
        for i in range(trace.MAX_SPANS + 5):
            trace.record_span("s", 0.0, i=i)
        assert len(trace.finished_spans()) == trace.MAX_SPANS
        assert trace.dropped_spans() == 5
        # oldest were shed
        assert trace.finished_spans()[0].attrs == {"i": 5}

    def test_reset_clears_spans_and_drop_count(self):
        obs.enable()
        trace.record_span("s", 0.0)
        trace.reset()
        assert trace.finished_spans() == []
        assert trace.dropped_spans() == 0


class TestSnapshots:
    def test_spans_snapshot_aggregates_by_name(self):
        obs.enable()
        trace.record_span("a", 1.0)
        trace.record_span("a", 3.0)
        trace.record_span("b", 2.0)
        snap = trace.spans_snapshot("lbl")
        assert snap["kind"] == "spans"
        assert snap["label"] == "lbl"
        assert len(snap["spans"]) == 3
        assert snap["aggregates"]["a"] == {
            "count": 2, "total_s": 4.0, "mean_s": 2.0, "max_s": 3.0,
        }
        assert snap["aggregates"]["b"]["count"] == 1

    def test_span_dicts_snapshot_matches_live_shape(self):
        obs.enable()
        trace.record_span("a", 1.0)
        live = trace.spans_snapshot()
        rebuilt = trace.span_dicts_snapshot(live["spans"])
        assert set(rebuilt) == set(live)
        assert rebuilt["aggregates"] == live["aggregates"]
        assert rebuilt["dropped"] == 0
