"""Crash-safety contract of the atomic write helpers."""

import json

import pytest

from repro.utils.atomic_io import (
    TMP_SUFFIX,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


class TestAtomicWrite:
    def test_creates_file_with_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing_content_completely(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("x" * 10_000)
        atomic_write_text(path, "short")
        assert path.read_text() == "short"

    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01\xff")
        assert path.read_bytes() == b"\x00\x01\xff"

    def test_json_roundtrip_sorted(self, tmp_path):
        path = tmp_path / "data.json"
        atomic_write_json(path, {"b": 2, "a": [1, 2]})
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": 2}

    def test_no_temp_files_left_after_success(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "data")
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(TMP_SUFFIX)]
        assert leftovers == []

    def test_failed_serialization_leaves_original_intact(self, tmp_path):
        path = tmp_path / "data.json"
        atomic_write_json(path, {"ok": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"ok": 1}
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(TMP_SUFFIX)]
        assert leftovers == []

    def test_stray_temp_file_is_harmless(self, tmp_path):
        # A crashed writer may leave a temp file; later writes still succeed
        # and the destination only ever holds complete content.
        path = tmp_path / "out.txt"
        (tmp_path / f".out.txt.abc{TMP_SUFFIX}").write_text("partial garbage")
        atomic_write_text(path, "complete")
        assert path.read_text() == "complete"
