"""Tests for table/series formatting and sweep helpers."""

import numpy as np
import pytest

from repro.analysis import (
    banner,
    format_series,
    format_table,
    geomean,
    log_space,
    normalize_to,
)


class TestFormatTable:
    def test_alignment_and_headers(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, rule, 2 rows

    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_float_rendering(self):
        text = format_table([{"v": 1.23456e-9}])
        assert "1.235e-09" in text

    def test_bool_and_none(self):
        text = format_table([{"x": True, "y": None}])
        assert "yes" in text and "-" in text

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series("p", [1e-5, 1e-4], {"pair": [1, 2], "xed": [3, 4]})
        assert "pair" in text and "xed" in text
        assert len(text.splitlines()) == 4


class TestSweepHelpers:
    def test_log_space_endpoints(self):
        xs = log_space(1e-7, 1e-3, 5)
        assert xs[0] == pytest.approx(1e-7)
        assert xs[-1] == pytest.approx(1e-3)
        assert len(xs) == 5

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10)
        assert np.isnan(geomean([]))
        assert np.isnan(geomean([1, 0]))

    def test_normalize_to(self):
        results = {"w1": {"a": 2.0, "b": 4.0}}
        normed = normalize_to(results, "a")
        assert normed["w1"]["a"] == 1.0
        assert normed["w1"]["b"] == 2.0

    def test_banner(self):
        assert "TITLE" in banner("TITLE")
