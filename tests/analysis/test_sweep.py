"""Tests for the sweep drivers."""

import numpy as np
import pytest

from repro.analysis import apply_grid, reliability_sweep
from repro.schemes import NoEcc, PairScheme


class TestApplyGrid:
    def test_cartesian_coverage(self):
        results = apply_grid(lambda a, b: a * b, a=[1, 2, 3], b=[10, 20])
        assert len(results) == 6
        assert {(r["a"], r["b"]) for r in results} == {
            (a, b) for a in (1, 2, 3) for b in (10, 20)
        }
        assert all(r["value"] == r["a"] * r["b"] for r in results)

    def test_single_axis(self):
        results = apply_grid(lambda x: x + 1, x=[0, 1])
        assert [r["value"] for r in results] == [1, 2]

    def test_empty_axis_yields_nothing(self):
        assert apply_grid(lambda x: x, x=[]) == []


class TestReliabilitySweep:
    def test_adds_combined_fail_column(self):
        bers = [1e-5, 1e-4]
        out = reliability_sweep([NoEcc()], bers, samples=50)
        data = out["no-ecc"]
        assert np.allclose(data["fail"], data["sdc"] + data["due"])
        assert data["ber"].tolist() == bers

    def test_multiple_schemes_keyed_by_name(self):
        out = reliability_sweep([NoEcc(), PairScheme()], [1e-4], samples=100)
        assert set(out) == {"no-ecc", "pair"}
