"""Tests for the markdown report generator."""

import pytest

from repro.analysis.report import ReportConfig, generate_report, write_report


@pytest.fixture(scope="module")
def report_text():
    # quick settings: structure is under test, not statistics
    return generate_report(ReportConfig(quick=True))


class TestReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "# PAIR reproduction",
            "## Scheme configurations (T1)",
            "## Reliability vs weak-cell BER (F2)",
            "## Performance (F5)",
            "## Burst survival (F4)",
            "## Implementation overheads (T2)",
            "## Energy per access (T3)",
            "## Scaling headroom: max tolerable BER (F9)",
        ):
            assert heading in report_text, heading

    def test_every_scheme_appears(self, report_text):
        for name in ("no-ecc", "iecc-sec", "xed", "duo", "pair"):
            assert name in report_text

    def test_markdown_tables_well_formed(self, report_text):
        lines = report_text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("|---"):
                header = lines[i - 1]
                assert header.count("|") == line.count("|"), header

    def test_write_report(self, tmp_path, monkeypatch):
        import repro.analysis.report as report_mod

        monkeypatch.setattr(report_mod, "generate_report", lambda config=None: "# stub\n")
        path = tmp_path / "out.md"
        assert write_report(str(path)) == str(path)
        assert path.read_text() == "# stub\n"
