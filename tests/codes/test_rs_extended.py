"""Tests for the singly extended RS code (PAIR's expandability mechanism)."""

import numpy as np
import pytest

from repro.codes import DecodeStatus, ReedSolomonCode, SinglyExtendedRS
from repro.galois import GF256, get_field

GF16 = get_field(4)


class TestConstruction:
    def test_pair_mother_code(self):
        code = SinglyExtendedRS(GF256, 256, 240)
        assert code.n == 256
        assert code.k == 240
        assert code.inner.r == 15
        assert code.t == 8  # one more than the inner t=7
        assert code.d_min == 17

    def test_rejects_overlong(self):
        # Deliberately past the singly-extended bound n = 2^8: asserting the
        # runtime guard behind REPRO121.
        with pytest.raises(ValueError):
            SinglyExtendedRS(GF256, 257, 240)  # repro: noqa-REPRO121

    def test_extension_symbol_is_sum(self):
        rng = np.random.default_rng(0)
        code = SinglyExtendedRS(GF256, 256, 240)
        cw = code.encode(rng.integers(0, 256, 240))
        assert cw[-1] == np.bitwise_xor.reduce(cw[:-1])

    def test_zero_encodes_to_zero(self):
        code = SinglyExtendedRS(GF256, 256, 240)
        assert not code.encode(np.zeros(240, dtype=np.int64)).any()


class TestCorrection:
    def test_corrects_t_errors_anywhere(self):
        """Any 8 symbol errors - including the extension symbol - correct."""
        rng = np.random.default_rng(1)
        code = SinglyExtendedRS(GF256, 256, 240)
        data = rng.integers(0, 256, 240)
        cw = code.encode(data)
        for trial in range(30):
            word = cw.copy()
            pos = rng.choice(256, 8, replace=False)
            for p in pos:
                word[p] ^= rng.integers(1, 256)
            result = code.decode(word)
            assert result.status is DecodeStatus.CORRECTED, trial
            assert np.array_equal(result.data, data)
            assert set(result.corrected_positions) == set(int(p) for p in pos)

    def test_corrects_errors_hitting_extension(self):
        rng = np.random.default_rng(2)
        code = SinglyExtendedRS(GF256, 256, 240)
        data = rng.integers(0, 256, 240)
        cw = code.encode(data)
        # 7 inner errors + the extension symbol = 8 total
        word = cw.copy()
        for p in rng.choice(255, 7, replace=False):
            word[p] ^= rng.integers(1, 256)
        word[255] ^= 99
        result = code.decode(word)
        assert result.believed_good
        assert np.array_equal(result.data, data)
        assert 255 in result.corrected_positions

    def test_extension_only_error(self):
        rng = np.random.default_rng(3)
        code = SinglyExtendedRS(GF256, 256, 240)
        data = rng.integers(0, 256, 240)
        cw = code.encode(data)
        word = cw.copy()
        word[255] ^= 1
        result = code.decode(word)
        assert result.believed_good
        assert np.array_equal(result.data, data)
        assert result.corrected_positions == (255,)

    def test_detects_beyond_t(self):
        rng = np.random.default_rng(4)
        code = SinglyExtendedRS(GF256, 256, 240)
        cw = code.encode(rng.integers(0, 256, 240))
        detected = 0
        for _ in range(30):
            word = cw.copy()
            for p in rng.choice(256, 9, replace=False):
                word[p] ^= rng.integers(1, 256)
            if code.decode(word).status is DecodeStatus.DETECTED:
                detected += 1
        assert detected >= 28

    def test_corrected_codeword_field(self):
        rng = np.random.default_rng(5)
        code = SinglyExtendedRS(GF256, 256, 240)
        cw = code.encode(rng.integers(0, 256, 240))
        word = cw.copy()
        word[3] ^= 7
        word[255] ^= 7
        result = code.decode(word)
        assert np.array_equal(result.codeword, cw)

    def test_clean_word(self):
        code = SinglyExtendedRS(GF256, 256, 240)
        data = np.arange(240, dtype=np.int64) % 256
        result = code.decode(code.encode(data))
        assert result.status is DecodeStatus.OK
        assert np.array_equal(result.data, data)


class TestDistanceGain:
    def test_extension_raises_distance_small_field(self):
        """Exhaustively confirm d_min = r + 2 on a small extended code."""
        code = SinglyExtendedRS(GF16, 16, 12)  # inner (15,12), r=3, d_ext=5
        assert code.d_min == 5
        min_weight = code.n
        rng = np.random.default_rng(6)
        for _ in range(3000):
            data = rng.integers(0, 16, 12)
            if not data.any():
                continue
            w = int(np.count_nonzero(code.encode(data)))
            min_weight = min(min_weight, w)
        assert min_weight >= 5

    def test_small_extended_corrects_two(self):
        """(16,12) extended: t = (3+1)//2 = 2 despite inner t = 1."""
        rng = np.random.default_rng(7)
        code = SinglyExtendedRS(GF16, 16, 12)
        assert code.t == 2
        data = rng.integers(0, 16, 12)
        cw = code.encode(data)
        for trial in range(60):
            word = cw.copy()
            for p in rng.choice(16, 2, replace=False):
                word[p] ^= rng.integers(1, 16)
            result = code.decode(word)
            assert result.believed_good, trial
            assert np.array_equal(result.data, data), trial


class TestErasures:
    def test_inner_erasures(self):
        rng = np.random.default_rng(8)
        code = SinglyExtendedRS(GF256, 256, 240)
        data = rng.integers(0, 256, 240)
        cw = code.encode(data)
        erasures = tuple(int(x) for x in rng.choice(255, 10, replace=False))
        word = cw.copy()
        for p in erasures:
            word[p] = rng.integers(0, 256)
        result = code.decode(word, erasures=erasures)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_extension_erasure(self):
        rng = np.random.default_rng(9)
        code = SinglyExtendedRS(GF256, 256, 240)
        data = rng.integers(0, 256, 240)
        cw = code.encode(data)
        word = cw.copy()
        word[255] = 0
        result = code.decode(word, erasures=(255,))
        assert result.believed_good
        assert np.array_equal(result.data, data)


class TestShortening:
    def test_shortened_expandability(self):
        """The same redundancy serves shorter codewords (x4/x16 variants)."""
        rng = np.random.default_rng(10)
        mother = SinglyExtendedRS(GF256, 256, 240)
        for n, k in [(128, 112), (64, 48)]:
            short = mother.shortened(n, k)
            assert short.t == mother.t
            data = rng.integers(0, 256, k)
            cw = short.encode(data)
            word = cw.copy()
            for p in rng.choice(n, short.t, replace=False):
                word[p] ^= rng.integers(1, 256)
            result = short.decode(word)
            assert result.believed_good
            assert np.array_equal(result.data, data)

    def test_shortened_rejects_redundancy_change(self):
        mother = SinglyExtendedRS(GF256, 256, 240)
        with pytest.raises(ValueError):
            mother.shortened(128, 100)
