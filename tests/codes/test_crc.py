"""Tests for the CRC link substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.crc import CRC8_DDR5, CRC16_CCITT, CrcCode


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrcCode(0, 0x1)
        with pytest.raises(ValueError):
            CrcCode(33, 0x1)
        with pytest.raises(ValueError):
            CrcCode(8, 0x1FF)  # terms beyond width

    def test_known_crc8_vector(self):
        # CRC-8/ATM of the single byte 0x00 is 0x00; of 0xFF it is a fixed value
        zero = CRC8_DDR5.compute(np.zeros(8, dtype=np.uint8))
        assert zero == 0
        ones = CRC8_DDR5.compute(np.ones(8, dtype=np.uint8))
        assert ones != 0


class TestRoundtrip:
    @given(st.integers(1, 200), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_clean_frames_check(self, nbits, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, nbits).astype(np.uint8)
        for code in (CRC8_DDR5, CRC16_CCITT):
            assert code.check(code.append(bits))

    @given(st.integers(8, 128), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_single_bit_errors_detected(self, nbits, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, nbits).astype(np.uint8)
        frame = CRC8_DDR5.append(bits)
        pos = int(rng.integers(len(frame)))
        frame[pos] ^= 1
        assert not CRC8_DDR5.check(frame)


class TestBurstDetection:
    def test_guarantee_predicate(self):
        assert CRC8_DDR5.detects_burst(8)
        assert not CRC8_DDR5.detects_burst(9)
        assert CRC16_CCITT.detects_burst(16)

    def test_all_bursts_within_width_detected(self):
        """Exhaustive: every contiguous burst of length <= 8 is caught."""
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        frame = CRC8_DDR5.append(bits)
        for length in range(1, 9):
            for start in range(len(frame) - length + 1):
                corrupted = frame.copy()
                corrupted[start : start + length] ^= 1
                assert not CRC8_DDR5.check(corrupted), (start, length)

    def test_long_bursts_escape_at_2_pow_minus_width(self):
        """Bursts beyond the width alias with probability ~2^-8."""
        rng = np.random.default_rng(1)
        bits = np.zeros(128, dtype=np.uint8)
        frame = CRC8_DDR5.append(bits)
        misses = 0
        trials = 3000
        for _ in range(trials):
            corrupted = frame.copy()
            start = int(rng.integers(0, 100))
            pattern = rng.integers(0, 2, 20).astype(np.uint8)
            corrupted[start : start + 20] ^= pattern
            if np.array_equal(corrupted, frame):
                continue
            if CRC8_DDR5.check(corrupted):
                misses += 1
        assert misses / trials < 0.02  # ~0.4% expected
