"""Property-based tests for RS expandability (the PAIR enabling property).

PAIR leans on one algebraic fact: a Reed-Solomon decoder built for
``(n, k)`` over GF(2^m) keeps working across the whole *expandable family* -
shortened siblings ``(n - s, k - s)``, any redundancy split, and the singly
extended variant with one extra distance unit.  These tests let hypothesis
roam over ``(n, k, m)`` and error/erasure placements instead of pinning a
handful of examples, with the batch decoder held equal to the scalar one
throughout.

All runs are derandomized (fixed example database seed) so CI is
deterministic; examples are kept small because each draw builds a fresh
code.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.codes import DecodeStatus, ReedSolomonCode, SinglyExtendedRS
from repro.galois import get_field

SETTINGS = settings(derandomize=True, deadline=None, max_examples=25)


@st.composite
def rs_params(draw):
    """(m, n, k) with 1 <= k < n <= 2^m - 1 and at least one check symbol."""
    m = draw(st.sampled_from([4, 8]))
    limit = (1 << m) - 1
    n = draw(st.integers(min_value=3, max_value=min(limit, 40)))
    k = draw(st.integers(min_value=1, max_value=n - 2))
    return m, n, k


@st.composite
def rs_with_errors(draw):
    """A code plus an error pattern within its correction radius."""
    m, n, k = draw(rs_params())
    code = ReedSolomonCode(get_field(m), n, k)  # repro: noqa-REPRO122
    n_errors = draw(st.integers(min_value=0, max_value=code.t))
    positions = draw(
        st.lists(st.integers(0, n - 1), min_size=n_errors, max_size=n_errors,
                 unique=True)
    )
    magnitudes = draw(
        st.lists(st.integers(1, (1 << m) - 1), min_size=n_errors,
                 max_size=n_errors)
    )
    seed = draw(st.integers(0, 2**16))
    return code, positions, magnitudes, seed


def random_data(code, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, code.field.order, code.k, dtype=np.int64)


class TestRoundTrip:
    @SETTINGS
    @given(params=rs_params(), seed=st.integers(0, 2**16))
    def test_encode_decode_identity(self, params, seed):
        m, n, k = params
        code = ReedSolomonCode(get_field(m), n, k)  # repro: noqa-REPRO122
        data = random_data(code, seed)
        word = code.encode(data)
        assert word.shape == (n,)
        result = code.decode(word)
        assert result.status is DecodeStatus.OK
        assert np.array_equal(result.data, data)

    @SETTINGS
    @given(params=rs_params(), seed=st.integers(0, 2**16))
    def test_extended_encode_decode_identity(self, params, seed):
        m, n, k = params
        code = SinglyExtendedRS(get_field(m), n + 1, k)
        data = random_data(code, seed)
        word = code.encode(data)
        assert word.shape == (n + 1,)
        # the extension symbol is the GF sum of the inner codeword
        assert int(np.bitwise_xor.reduce(word[:-1])) == int(word[-1])
        result = code.decode(word)
        assert result.status is DecodeStatus.OK
        assert np.array_equal(result.data, data)


class TestErrorCorrection:
    @SETTINGS
    @given(case=rs_with_errors())
    def test_within_radius_errors_corrected(self, case):
        code, positions, magnitudes, seed = case
        data = random_data(code, seed)
        word = code.encode(data)
        for pos, mag in zip(positions, magnitudes):
            word[pos] ^= mag
        result = code.decode(word)
        assert result.status in (DecodeStatus.OK, DecodeStatus.CORRECTED)
        assert np.array_equal(result.data, data)
        if result.status is DecodeStatus.CORRECTED:
            assert set(result.corrected_positions) == set(positions)

    @SETTINGS
    @given(case=rs_with_errors())
    def test_decode_batch_equals_scalar(self, case):
        code, positions, magnitudes, seed = case
        data = random_data(code, seed)
        clean = code.encode(data)
        dirty = clean.copy()
        for pos, mag in zip(positions, magnitudes):
            dirty[pos] ^= mag
        batch = code.decode_batch(np.stack([clean, dirty]))
        for row, word in zip(batch, (clean, dirty)):
            scalar = code.decode(word)
            assert row.status is scalar.status
            assert np.array_equal(row.data, scalar.data)
            assert row.corrected_positions == scalar.corrected_positions


class TestErasures:
    @SETTINGS
    @given(params=rs_params(), seed=st.integers(0, 2**16),
           data_seed=st.integers(0, 2**16))
    def test_burst_erasure_up_to_r(self, params, seed, data_seed):
        """Any run of up to r consecutive erased symbols decodes (2v+f<=r)."""
        m, n, k = params
        code = ReedSolomonCode(get_field(m), n, k)  # repro: noqa-REPRO122
        rng = np.random.default_rng(seed)
        length = int(rng.integers(1, code.r + 1))
        start = int(rng.integers(0, n - length + 1))
        erasures = tuple(range(start, start + length))
        data = random_data(code, data_seed)
        word = code.encode(data)
        for pos in erasures:
            word[pos] ^= int(rng.integers(1, code.field.order))
        result = code.decode(word, erasures=erasures)
        assert result.status in (DecodeStatus.OK, DecodeStatus.CORRECTED)
        assert np.array_equal(result.data, data)

    @SETTINGS
    @given(params=rs_params(), seed=st.integers(0, 2**16))
    def test_errors_and_erasures_budget(self, params, seed):
        """v random errors plus f erasures decode whenever 2v + f <= r."""
        m, n, k = params
        code = ReedSolomonCode(get_field(m), n, k)  # repro: noqa-REPRO122
        rng = np.random.default_rng(seed)
        f = int(rng.integers(0, code.r + 1))
        max_v = (code.r - f) // 2
        v = int(rng.integers(0, max_v + 1)) if max_v > 0 else 0
        picks = rng.choice(n, f + v, replace=False)
        erasures = tuple(int(p) for p in picks[:f])
        data = random_data(code, seed)
        word = code.encode(data)
        for pos in picks:
            word[int(pos)] ^= int(rng.integers(1, code.field.order))
        result = code.decode(word, erasures=erasures)
        assert result.status in (DecodeStatus.OK, DecodeStatus.CORRECTED)
        assert np.array_equal(result.data, data)


class TestExpandability:
    @SETTINGS
    @given(params=rs_params(), shorten=st.integers(1, 8),
           seed=st.integers(0, 2**16))
    def test_shortened_sibling_round_trips(self, params, shorten, seed):
        """Shortening preserves redundancy and the decoder contract."""
        m, n, k = params
        assume(k > shorten)
        code = ReedSolomonCode(get_field(m), n, k)  # repro: noqa-REPRO122
        sibling = code.shortened(n - shorten, k - shorten)
        assert sibling.r == code.r
        assert sibling.t == code.t
        data = random_data(sibling, seed)
        word = sibling.encode(data)
        result = sibling.decode(word)
        assert result.status is DecodeStatus.OK
        assert np.array_equal(result.data, data)

    @SETTINGS
    @given(params=rs_params(), seed=st.integers(0, 2**16))
    def test_extension_buys_one_distance_unit(self, params, seed):
        m, n, k = params
        inner = ReedSolomonCode(get_field(m), n, k)  # repro: noqa-REPRO122
        extended = SinglyExtendedRS(get_field(m), n + 1, k)
        assert extended.d_min == inner.d_min + 1
        assert extended.t == (inner.r + 1) // 2

    @SETTINGS
    @given(params=rs_params(), seed=st.integers(0, 2**16))
    def test_extended_corrects_extension_symbol_error(self, params, seed):
        """Case B of the two-hypothesis decode: a corrupted extension symbol
        never reaches the data."""
        m, n, k = params
        code = SinglyExtendedRS(get_field(m), n + 1, k)
        assume(code.t >= 1)
        rng = np.random.default_rng(seed)
        data = random_data(code, seed)
        word = code.encode(data)
        word[-1] ^= int(rng.integers(1, code.field.order))
        result = code.decode(word)
        assert result.status in (DecodeStatus.OK, DecodeStatus.CORRECTED)
        assert np.array_equal(result.data, data)

    @SETTINGS
    @given(params=rs_params(), seed=st.integers(0, 2**16))
    def test_extended_decode_batch_equals_scalar(self, params, seed):
        m, n, k = params
        code = SinglyExtendedRS(get_field(m), n + 1, k)
        rng = np.random.default_rng(seed)
        data = random_data(code, seed)
        clean = code.encode(data)
        dirty = clean.copy()
        n_errors = int(rng.integers(0, code.t + 1))
        if n_errors:
            for pos in rng.choice(code.n, n_errors, replace=False):
                dirty[int(pos)] ^= int(rng.integers(1, code.field.order))
        batch = code.decode_batch(np.stack([clean, dirty]))
        for row, word in zip(batch, (clean, dirty)):
            scalar = code.decode(word)
            assert row.status is scalar.status
            assert np.array_equal(row.data, scalar.data)
            assert row.corrected_positions == scalar.corrected_positions
