"""Tests for interleaving / symbol-orientation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    beat_aligned_symbols,
    block_deinterleave,
    block_interleave,
    pin_aligned_symbols,
    symbols_to_pin_bits,
)


class TestBlockInterleave:
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, rows * cols)
        out = block_deinterleave(block_interleave(data, rows, cols), rows, cols)
        assert np.array_equal(out, data)

    def test_known_pattern(self):
        data = np.arange(6)
        assert np.array_equal(block_interleave(data, 2, 3), [0, 3, 1, 4, 2, 5])

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            block_interleave(np.arange(5), 2, 3)


class TestPinAlignment:
    def test_pin_aligned_packs_along_pin(self):
        bits = np.zeros((2, 16), dtype=np.int64)
        bits[0, :8] = [1, 0, 1, 0, 0, 0, 0, 0]  # pin 0, first symbol = 0b101
        syms = pin_aligned_symbols(bits, pins=2, symbol_bits=8)
        assert syms.shape == (2, 2)
        assert syms[0, 0] == 0b101
        assert syms[1, 0] == 0

    def test_beat_aligned_packs_across_pins(self):
        bits = np.zeros((8, 2), dtype=np.int64)
        bits[:, 0] = [1, 1, 0, 0, 0, 0, 0, 0]  # beat 0 across 8 pins
        syms = beat_aligned_symbols(bits, pins=8, symbol_bits=8)
        assert syms.shape == (2,)
        assert syms[0] == 0b11

    def test_pin_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, (8, 32))
        syms = pin_aligned_symbols(bits, 8, 8)
        back = symbols_to_pin_bits(syms, 8, 8)
        assert np.array_equal(back, bits)

    def test_burst_touches_few_pin_symbols_many_beat_symbols(self):
        """The geometric fact PAIR exploits, in miniature."""
        pins, beats = 8, 32
        bits = np.zeros((pins, beats), dtype=np.int64)
        bits[3, 8:16] = 1  # 8-beat burst on pin 3
        pin_syms = pin_aligned_symbols(bits, pins, 8)
        beat_syms = beat_aligned_symbols(bits, pins, 8)
        assert np.count_nonzero(pin_syms) <= 2  # confined to one pin's symbols
        assert np.count_nonzero(beat_syms) == 8  # smeared across symbols

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pin_aligned_symbols(np.zeros((4, 10), dtype=np.int64), 4, 8)
        with pytest.raises(ValueError):
            beat_aligned_symbols(np.zeros((3, 8), dtype=np.int64), 4, 8)
