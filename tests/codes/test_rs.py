"""Tests for the Reed-Solomon codec (errors, erasures, shortening)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import DecodeStatus, ReedSolomonCode
from repro.galois import GF256, get_field

GF16 = get_field(4)


def corrupt(rng, word, n_errors, avoid=()):
    out = word.copy()
    candidates = [i for i in range(len(word)) if i not in avoid]
    pos = rng.choice(candidates, n_errors, replace=False)
    for p in pos:
        out[p] ^= rng.integers(1, 256 if len(word) > 15 else 16)
    return out, set(int(p) for p in pos)


class TestConstruction:
    def test_rejects_bad_dimensions(self):
        # Deliberately invalid (n, k): asserting the runtime guard the
        # static REPRO122 rule mirrors.
        with pytest.raises(ValueError):
            ReedSolomonCode(GF256, 10, 10)  # repro: noqa-REPRO122
        with pytest.raises(ValueError):
            ReedSolomonCode(GF256, 10, 0)  # repro: noqa-REPRO122

    def test_rejects_overlong(self):
        # Deliberately overlong: asserting the runtime guard behind REPRO121.
        with pytest.raises(ValueError):
            ReedSolomonCode(GF256, 256, 200)  # repro: noqa-REPRO121

    def test_generator_properties(self):
        rs = ReedSolomonCode(GF256, 255, 239)
        assert rs.t == 8
        assert rs.d_min == 17
        assert len(rs.generator) == 17  # degree r
        assert rs.generator[-1] == 1  # monic

    def test_generator_roots(self):
        from repro.galois import poly

        rs = ReedSolomonCode(GF16, 15, 9, fcr=1)
        for j in range(6):
            assert poly.evaluate(GF16, rs.generator, GF16.alpha_pow(1 + j)) == 0

    def test_rate_and_overhead(self):
        rs = ReedSolomonCode(GF256, 255, 239)
        assert rs.r == 16
        assert rs.rate == pytest.approx(239 / 255)
        assert rs.overhead == pytest.approx(16 / 239)


class TestEncode:
    def test_systematic_layout(self):
        rng = np.random.default_rng(0)
        rs = ReedSolomonCode(GF256, 255, 239)
        data = rng.integers(0, 256, 239)
        cw = rs.encode(data)
        assert np.array_equal(cw[:239], data)

    def test_codeword_has_zero_syndromes(self):
        rng = np.random.default_rng(1)
        for n, k in [(255, 239), (60, 50), (15, 9)]:
            field = GF256 if n > 15 else GF16
            rs = ReedSolomonCode(field, n, k)
            cw = rs.encode(rng.integers(0, field.order, k))
            assert not np.any(rs.syndromes(cw))

    def test_zero_encodes_to_zero(self):
        rs = ReedSolomonCode(GF256, 100, 80)
        assert not rs.encode(np.zeros(80, dtype=np.int64)).any()

    def test_encode_is_linear(self):
        rng = np.random.default_rng(2)
        rs = ReedSolomonCode(GF256, 60, 40)
        a = rng.integers(0, 256, 40)
        b = rng.integers(0, 256, 40)
        assert np.array_equal(rs.encode(a) ^ rs.encode(b), rs.encode(a ^ b))

    def test_rejects_wrong_shape_and_range(self):
        rs = ReedSolomonCode(GF256, 60, 40)
        with pytest.raises(ValueError):
            rs.encode(np.zeros(39, dtype=np.int64))
        with pytest.raises(ValueError):
            rs.encode(np.full(40, 256, dtype=np.int64))

    def test_is_codeword(self):
        rng = np.random.default_rng(3)
        rs = ReedSolomonCode(GF256, 60, 40)
        cw = rs.encode(rng.integers(0, 256, 40))
        assert rs.is_codeword(cw)
        bad = cw.copy()
        bad[7] ^= 1
        assert not rs.is_codeword(bad)


class TestDecodeErrors:
    @pytest.mark.parametrize("n,k", [(255, 239), (255, 223), (100, 88), (15, 9)])
    def test_corrects_up_to_t(self, n, k):
        field = GF256 if n > 15 else GF16
        rs = ReedSolomonCode(field, n, k)
        rng = np.random.default_rng(n * 31 + k)
        data = rng.integers(0, field.order, k)
        cw = rs.encode(data)
        for nerr in range(0, rs.t + 1):
            word, pos = corrupt(rng, cw, nerr)
            result = rs.decode(word)
            assert result.believed_good
            assert np.array_equal(result.data, data), f"n={n},k={k},errs={nerr}"
            assert result.corrections == nerr
            assert set(result.corrected_positions) == pos

    def test_detects_beyond_t_usually(self):
        rs = ReedSolomonCode(GF256, 255, 239)
        rng = np.random.default_rng(5)
        data = rng.integers(0, 256, 239)
        cw = rs.encode(data)
        detected = 0
        for _ in range(40):
            word, _ = corrupt(rng, cw, rs.t + 1)
            if rs.decode(word).status is DecodeStatus.DETECTED:
                detected += 1
        assert detected >= 38  # miscorrection fraction is ~2e-5

    def test_clean_word_is_ok(self):
        rs = ReedSolomonCode(GF256, 100, 88)
        data = np.arange(88, dtype=np.int64)
        result = rs.decode(rs.encode(data))
        assert result.status is DecodeStatus.OK
        assert result.corrections == 0
        assert np.array_equal(result.codeword, rs.encode(data))

    def test_corrected_codeword_field(self):
        rng = np.random.default_rng(6)
        rs = ReedSolomonCode(GF256, 100, 88)
        cw = rs.encode(rng.integers(0, 256, 88))
        word, _ = corrupt(rng, cw, 4)
        result = rs.decode(word)
        assert np.array_equal(result.codeword, cw)

    def test_errors_in_parity_only(self):
        rng = np.random.default_rng(7)
        rs = ReedSolomonCode(GF256, 100, 88)
        data = rng.integers(0, 256, 88)
        cw = rs.encode(data)
        word = cw.copy()
        word[95] ^= 3
        word[99] ^= 200
        result = rs.decode(word)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_rejects_wrong_length(self):
        rs = ReedSolomonCode(GF256, 100, 88)
        with pytest.raises(ValueError):
            rs.decode(np.zeros(99, dtype=np.int64))

    def test_fcr_variants(self):
        rng = np.random.default_rng(8)
        for fcr in (0, 1, 2):
            rs = ReedSolomonCode(GF256, 60, 40, fcr=fcr)
            data = rng.integers(0, 256, 40)
            cw = rs.encode(data)
            word, _ = corrupt(rng, cw, rs.t)
            result = rs.decode(word)
            assert result.believed_good and np.array_equal(result.data, data)


class TestDecodeErasures:
    def test_corrects_r_erasures(self):
        rng = np.random.default_rng(9)
        rs = ReedSolomonCode(GF256, 255, 239)
        data = rng.integers(0, 256, 239)
        cw = rs.encode(data)
        erasures = tuple(int(x) for x in rng.choice(255, rs.r, replace=False))
        word = cw.copy()
        for p in erasures:
            word[p] = rng.integers(0, 256)
        result = rs.decode(word, erasures=erasures)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_errors_and_erasures_boundary(self):
        """Any (v, f) with 2v + f <= r must decode."""
        rng = np.random.default_rng(10)
        rs = ReedSolomonCode(GF256, 100, 84)  # r = 16
        data = rng.integers(0, 256, 84)
        cw = rs.encode(data)
        for f in range(0, rs.r + 1, 4):
            v = (rs.r - f) // 2
            erasures = tuple(int(x) for x in rng.choice(100, f, replace=False))
            word = cw.copy()
            for p in erasures:
                word[p] = rng.integers(0, 256)
            word, _ = corrupt(rng, word, v, avoid=erasures)
            result = rs.decode(word, erasures=erasures)
            assert result.believed_good, f"v={v}, f={f}"
            assert np.array_equal(result.data, data), f"v={v}, f={f}"

    def test_erasure_with_correct_value_is_fine(self):
        """Erased positions whose stored value happens to be right cost nothing."""
        rng = np.random.default_rng(11)
        rs = ReedSolomonCode(GF256, 100, 84)
        data = rng.integers(0, 256, 84)
        cw = rs.encode(data)
        erasures = tuple(int(x) for x in rng.choice(100, 10, replace=False))
        result = rs.decode(cw.copy(), erasures=erasures)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_too_many_erasures_detected(self):
        rng = np.random.default_rng(12)
        rs = ReedSolomonCode(GF256, 100, 84)
        cw = rs.encode(rng.integers(0, 256, 84))
        erasures = tuple(range(rs.r + 1))
        word = cw.copy()
        for p in erasures:
            word[p] ^= rng.integers(1, 256)
        result = rs.decode(word, erasures=erasures)
        assert result.status is DecodeStatus.DETECTED


class TestShortening:
    def test_shortened_shares_generator(self):
        mother = ReedSolomonCode(GF256, 255, 239)
        short = mother.shortened(100, 84)
        assert np.array_equal(short.generator, mother.generator)

    def test_shortened_rejects_different_redundancy(self):
        mother = ReedSolomonCode(GF256, 255, 239)
        with pytest.raises(ValueError):
            mother.shortened(100, 80)

    def test_shortened_codeword_embeds_in_mother(self):
        """A shortened codeword zero-padded at the front is a mother codeword."""
        rng = np.random.default_rng(13)
        mother = ReedSolomonCode(GF256, 255, 239)
        short = mother.shortened(100, 84)
        data = rng.integers(0, 256, 84)
        cw_short = short.encode(data)
        padded_data = np.concatenate([np.zeros(155, dtype=np.int64), data])
        cw_mother = mother.encode(padded_data)
        assert np.array_equal(cw_mother[155:], cw_short)


class TestImpulseParities:
    @pytest.mark.parametrize("n,k", [(255, 240), (60, 40), (15, 9)])
    def test_matches_direct_encode(self, n, k):
        field = GF256 if n > 15 else GF16
        rs = ReedSolomonCode(field, n, k)
        table = rs.impulse_parities()
        assert table.shape == (k, n - k)
        for i in (0, 1, k // 2, k - 1):
            unit = np.zeros(k, dtype=np.int64)
            unit[i] = 1
            assert np.array_equal(table[i], rs.encode(unit)[k:]), f"pos {i}"

    def test_linearity_reconstructs_any_parity(self):
        rng = np.random.default_rng(14)
        rs = ReedSolomonCode(GF256, 100, 84)
        table = rs.impulse_parities()
        data = rng.integers(0, 256, 84)
        products = rs.field.mul(table, data[:, None])
        parity = np.bitwise_xor.reduce(products, axis=0)
        assert np.array_equal(parity, rs.encode(data)[84:])


class TestSyndromes:
    def test_fast_path_matches_horner(self):
        from repro.galois import poly

        rng = np.random.default_rng(15)
        rs = ReedSolomonCode(GF256, 255, 223)
        word = rng.integers(0, 256, 255)
        fast = rs.syndromes(word)
        for j in range(rs.r):
            expect = poly.evaluate(GF256, word[::-1], GF256.alpha_pow(rs.fcr + j))
            assert fast[j] == expect
