"""Tests for the XOR parity (RAID-3) substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import XorParity


class TestXorParity:
    def test_rejects_single_lane(self):
        with pytest.raises(ValueError):
            XorParity(1)

    def test_parity_of_zeros_is_zero(self):
        p = XorParity(4)
        lanes = np.zeros((4, 16), dtype=np.uint8)
        assert not p.parity(lanes).any()

    def test_lane_count_enforced(self):
        p = XorParity(4)
        with pytest.raises(ValueError):
            p.parity(np.zeros((3, 16), dtype=np.uint8))

    def test_check(self):
        rng = np.random.default_rng(0)
        p = XorParity(4)
        lanes = rng.integers(0, 2, (4, 32)).astype(np.uint8)
        parity = p.parity(lanes)
        assert p.check(lanes, parity)
        lanes[2, 5] ^= 1
        assert not p.check(lanes, parity)

    @given(st.integers(0, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_reconstruct_any_lane(self, missing, seed):
        rng = np.random.default_rng(seed)
        p = XorParity(4)
        lanes = rng.integers(0, 2, (4, 64)).astype(np.uint8)
        parity = p.parity(lanes)
        corrupted = lanes.copy()
        corrupted[missing] = rng.integers(0, 2, 64)
        rebuilt = p.reconstruct(corrupted, parity, missing)
        assert np.array_equal(rebuilt, lanes[missing])

    def test_reconstruct_bounds(self):
        p = XorParity(4)
        lanes = np.zeros((4, 8), dtype=np.uint8)
        with pytest.raises(ValueError):
            p.reconstruct(lanes, np.zeros(8, dtype=np.uint8), 4)
