"""Property tests: ``decode_batch`` is element-wise identical to ``decode``.

The batched Monte-Carlo engines rely on this contract for bit-identical
tallies, so it is exercised across the whole outcome space: clean words,
correctable errors, erasure mixes, and beyond-bound words (where bounded-
distance decoders either flag or miscorrect - both must match).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    DecodeStatus,
    HammingSEC,
    HsiaoSECDED,
    ReedSolomonCode,
    SinglyExtendedRS,
)
from repro.codes.rs import chien_points
from repro.galois import GF256

RS = ReedSolomonCode(GF256, 76, 64)
RS_FCR0 = ReedSolomonCode(GF256, 40, 32, fcr=0)
EXT = SinglyExtendedRS(GF256, 20, 12)
EXT_FULL = SinglyExtendedRS(GF256, 256, 240)


def assert_same_result(a, b, ctx=""):
    assert a.status is b.status, ctx
    assert np.array_equal(a.data, b.data), ctx
    assert a.corrected_positions == b.corrected_positions, ctx
    assert (a.codeword is None) == (b.codeword is None), ctx
    if a.codeword is not None:
        assert np.array_equal(a.codeword, b.codeword), ctx


def random_words(code, rng, count, max_errors):
    """Corrupted zero codewords plus per-word erasure hints."""
    words = np.zeros((count, code.n), dtype=np.int64)
    erasures = []
    for i in range(count):
        n_err = int(rng.integers(0, max_errors + 1))
        pos = rng.choice(code.n, n_err, replace=False)
        words[i, pos] = rng.integers(1, 256, size=n_err)
        # erase a mix of genuinely-corrupted and clean positions
        hint = set(int(p) for p in pos[: int(rng.integers(0, n_err + 1))])
        while rng.random() < 0.3:
            hint.add(int(rng.integers(code.n)))
        erasures.append(tuple(sorted(hint)))
    return words, erasures


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_rs_batch_equals_scalar(seed):
    rng = np.random.default_rng(seed)
    words, erasures = random_words(RS, rng, 24, RS.r + 3)
    for batch_result, word, ers in zip(
        RS.decode_batch(words, erasures), words, erasures
    ):
        assert_same_result(batch_result, RS.decode(word, ers), f"seed={seed}")


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_rs_fcr0_batch_equals_scalar(seed):
    rng = np.random.default_rng(seed)
    words, erasures = random_words(RS_FCR0, rng, 16, RS_FCR0.r + 2)
    for batch_result, word, ers in zip(
        RS_FCR0.decode_batch(words, erasures), words, erasures
    ):
        assert_same_result(batch_result, RS_FCR0.decode(word, ers), f"seed={seed}")


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_extended_rs_batch_equals_scalar(seed):
    rng = np.random.default_rng(seed)
    words, erasures = random_words(EXT, rng, 24, EXT.inner.r + 3)
    for batch_result, word, ers in zip(
        EXT.decode_batch(words, erasures), words, erasures
    ):
        assert_same_result(batch_result, EXT.decode(word, ers), f"seed={seed}")


def test_extended_rs_full_size_batch():
    # The PAIR production code, including words that corrupt the extension
    # symbol (position n-1: exercises the case-A/case-B hypothesis split).
    rng = np.random.default_rng(0xEC)
    words, erasures = random_words(EXT_FULL, rng, 40, EXT_FULL.t + 3)
    words[5, EXT_FULL.n - 1] ^= 0x55
    words[11, EXT_FULL.n - 1] ^= 0x01
    for batch_result, word, ers in zip(
        EXT_FULL.decode_batch(words, erasures), words, erasures
    ):
        assert_same_result(batch_result, EXT_FULL.decode(word, ers))


def test_batch_statuses_cover_all_outcomes():
    # Sanity: the random mix above must actually exercise OK, CORRECTED and
    # DETECTED rows, otherwise the property tests prove less than they claim.
    rng = np.random.default_rng(1)
    words, erasures = random_words(RS, rng, 200, RS.r + 3)
    statuses = {r.status for r in RS.decode_batch(words, erasures)}
    assert statuses == {DecodeStatus.OK, DecodeStatus.CORRECTED, DecodeStatus.DETECTED}


def test_hamming_batch_equals_scalar():
    for code in (HammingSEC(136, 128), HsiaoSECDED(72, 64)):
        rng = np.random.default_rng(9)
        words = np.zeros((120, code.n), dtype=np.uint8)
        for i in range(120):
            n_err = int(rng.integers(0, 4))
            pos = rng.choice(code.n, n_err, replace=False)
            words[i, pos] = 1
        for batch_result, word in zip(code.decode_batch(words), words):
            scalar = code.decode(word)
            assert batch_result.status is scalar.status
            assert np.array_equal(batch_result.data, scalar.data)
            assert batch_result.corrected_positions == scalar.corrected_positions


def test_chien_points_cached_and_correct():
    pts = chien_points(GF256, 76)
    assert pts is chien_points(GF256, 76)
    for c, p in enumerate(pts):
        assert p == GF256.alpha_pow(-c)
    # growing n reuses the same cache entry family without corruption
    longer = chien_points(GF256, 255)
    assert np.array_equal(longer[:76], pts)
