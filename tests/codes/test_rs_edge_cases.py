"""Edge-case battery for the RS codec beyond the main test file."""

import numpy as np
import pytest

from repro.codes import DecodeStatus, ReedSolomonCode, SinglyExtendedRS
from repro.galois import GF256, get_field

GF16 = get_field(4)


class TestFullLengthCode:
    def test_n_equals_field_limit(self):
        """The unshortened n = q - 1 code works end to end."""
        rng = np.random.default_rng(0)
        rs = ReedSolomonCode(GF16, 15, 11)
        data = rng.integers(0, 16, 11)
        cw = rs.encode(data)
        word = cw.copy()
        word[0] ^= 5
        word[14] ^= 9
        result = rs.decode(word)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_minimum_dimension(self):
        """k = 1: one data symbol, maximal redundancy."""
        rs = ReedSolomonCode(GF16, 15, 1)
        cw = rs.encode(np.array([7]))
        word = cw.copy()
        for p in (0, 3, 6, 9, 12, 14, 2):  # t = 7 errors
            word[p] ^= 1
        result = rs.decode(word)
        assert result.believed_good
        assert result.data[0] == 7


class TestErrorPositionEdges:
    @pytest.mark.parametrize("position", [0, 1, 238, 239, 240, 253, 254])
    def test_single_error_at_every_region_boundary(self, position):
        rng = np.random.default_rng(position)
        rs = ReedSolomonCode(GF256, 255, 239)
        data = rng.integers(0, 256, 239)
        cw = rs.encode(data)
        word = cw.copy()
        word[position] ^= int(rng.integers(1, 256))
        result = rs.decode(word)
        assert result.corrected_positions == (position,)
        assert np.array_equal(result.data, data)

    def test_all_errors_in_parity_beyond_t_detected(self):
        rng = np.random.default_rng(1)
        rs = ReedSolomonCode(GF256, 100, 88)  # r=12, t=6
        cw = rs.encode(rng.integers(0, 256, 88))
        word = cw.copy()
        for p in range(88, 95):  # 7 parity errors > t
            word[p] ^= int(rng.integers(1, 256))
        result = rs.decode(word)
        # must not silently pass wrong parity as clean data
        assert result.status in (DecodeStatus.DETECTED, DecodeStatus.CORRECTED)
        if result.status is DecodeStatus.CORRECTED:
            # if it corrected, the data must be right (errors were parity-only)
            assert np.array_equal(result.data, cw[:88])


class TestErasureEdges:
    def test_duplicate_erasure_positions_equivalent(self):
        rng = np.random.default_rng(2)
        rs = ReedSolomonCode(GF256, 100, 84)
        data = rng.integers(0, 256, 84)
        cw = rs.encode(data)
        word = cw.copy()
        word[10] = int(rng.integers(0, 256))
        clean = rs.decode(word, erasures=(10,))
        assert clean.believed_good
        assert np.array_equal(clean.data, data)

    def test_erasures_at_data_parity_boundary(self):
        rng = np.random.default_rng(3)
        rs = ReedSolomonCode(GF256, 100, 84)
        data = rng.integers(0, 256, 84)
        cw = rs.encode(data)
        erasures = (83, 84, 85)  # last data symbol + first parity symbols
        word = cw.copy()
        for p in erasures:
            word[p] = int(rng.integers(0, 256))
        result = rs.decode(word, erasures=erasures)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_erasure_position_out_of_support_is_harmless(self):
        """Erasing a position with the right value costs budget but works."""
        rng = np.random.default_rng(4)
        rs = ReedSolomonCode(GF256, 100, 84)
        data = rng.integers(0, 256, 84)
        word = rs.encode(data)
        result = rs.decode(word, erasures=tuple(range(16)))  # f = r
        assert result.believed_good
        assert np.array_equal(result.data, data)


class TestBoundedDistanceBehaviour:
    def test_exactly_t_plus_one_never_returns_ok(self):
        """Beyond capability the decoder must never claim OK-without-action."""
        rng = np.random.default_rng(5)
        rs = ReedSolomonCode(GF256, 60, 48)  # t = 6
        cw = rs.encode(rng.integers(0, 256, 48))
        for trial in range(30):
            word = cw.copy()
            for p in rng.choice(60, 7, replace=False):
                word[p] ^= int(rng.integers(1, 256))
            result = rs.decode(word)
            assert result.status is not DecodeStatus.OK, trial

    def test_miscorrection_produces_valid_codeword(self):
        """When bounded-distance decoding does miscorrect, the output is a
        codeword (that is what makes it *silent*)."""
        rng = np.random.default_rng(6)
        rs = ReedSolomonCode(GF16, 15, 11)  # small: miscorrections common
        cw = rs.encode(rng.integers(0, 16, 11))
        seen_miscorrection = False
        for _ in range(300):
            word = cw.copy()
            for p in rng.choice(15, 5, replace=False):  # way beyond t = 2
                word[p] ^= int(rng.integers(1, 16))
            result = rs.decode(word)
            if result.status is DecodeStatus.CORRECTED and not np.array_equal(
                result.data, cw[:11]
            ):
                seen_miscorrection = True
                assert rs.is_codeword(result.codeword)
        assert seen_miscorrection


class TestExtendedEdges:
    def test_shortest_sensible_extended_code(self):
        code = SinglyExtendedRS(GF16, 8, 4)  # inner (7,4), r=3, t=2
        rng = np.random.default_rng(7)
        data = rng.integers(0, 16, 4)
        cw = code.encode(data)
        for positions in [(0, 7), (3, 7), (0, 1)]:
            word = cw.copy()
            for p in positions:
                word[p] ^= 3
            result = code.decode(word)
            assert result.believed_good, positions
            assert np.array_equal(result.data, data), positions

    def test_extended_all_zero_roundtrip(self):
        code = SinglyExtendedRS(GF256, 256, 240)
        result = code.decode(np.zeros(256, dtype=np.int64))
        assert result.status is DecodeStatus.OK
        assert not result.data.any()

    def test_rejects_wrong_length(self):
        code = SinglyExtendedRS(GF256, 256, 240)
        with pytest.raises(ValueError):
            code.decode(np.zeros(255, dtype=np.int64))
