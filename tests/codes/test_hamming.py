"""Tests for Hamming SEC and Hsiao SEC-DED codes."""

import itertools

import numpy as np
import pytest

from repro.codes import DecodeStatus, HammingSEC, HsiaoSECDED
from repro.galois import linalg2


class TestHammingSEC:
    def test_ddr5_dimensions(self):
        code = HammingSEC(136, 128)
        assert code.r == 8
        assert code.d_min == 3
        assert code.overhead == pytest.approx(0.0625)

    def test_rejects_beyond_bound(self):
        # Deliberately beyond the SEC bound (needs n <= 2^8 - 1): asserting
        # the runtime guard the static REPRO122 rule mirrors.
        with pytest.raises(ValueError):
            HammingSEC(256, 248)  # repro: noqa-REPRO122

    def test_parity_check_annihilates_codewords(self):
        rng = np.random.default_rng(0)
        code = HammingSEC(136, 128)
        for _ in range(10):
            cw = code.encode(rng.integers(0, 2, 128))
            assert not linalg2.matvec(code.H, cw).any()

    def test_columns_distinct_nonzero(self):
        code = HammingSEC(136, 128)
        cols = [tuple(code.H[:, i]) for i in range(code.n)]
        assert len(set(cols)) == code.n
        assert all(any(c) for c in cols)

    def test_corrects_every_single_bit_error(self):
        rng = np.random.default_rng(1)
        code = HammingSEC(136, 128)
        data = rng.integers(0, 2, 128)
        cw = code.encode(data)
        for pos in range(136):
            word = cw.copy()
            word[pos] ^= 1
            result = code.decode(word)
            assert result.status is DecodeStatus.CORRECTED
            assert result.corrected_positions == (pos,)
            assert np.array_equal(result.data, data)

    def test_double_errors_miscorrect_or_detect(self):
        rng = np.random.default_rng(2)
        code = HammingSEC(136, 128)
        data = rng.integers(0, 2, 128)
        cw = code.encode(data)
        mis = det = 0
        for _ in range(300):
            word = cw.copy()
            for p in rng.choice(136, 2, replace=False):
                word[p] ^= 1
            result = code.decode(word)
            if result.status is DecodeStatus.DETECTED:
                det += 1
            else:
                assert result.status is DecodeStatus.CORRECTED
                assert not np.array_equal(result.data, data)  # always wrong
                mis += 1
        # measured miscorrection fraction is ~0.88 for this code
        assert mis > det

    def test_miscorrection_fraction_consistent(self):
        code = HammingSEC(136, 128)
        frac = code.miscorrection_fraction()
        assert 0.8 < frac < 0.95
        # spot-check against direct simulation
        rng = np.random.default_rng(3)
        cw = code.encode(np.zeros(128, dtype=np.uint8))
        mis = 0
        trials = 400
        for _ in range(trials):
            word = cw.copy()
            for p in rng.choice(136, 2, replace=False):
                word[p] ^= 1
            if code.decode(word).status is DecodeStatus.CORRECTED:
                mis += 1
        assert abs(mis / trials - frac) < 0.08

    def test_clean_word(self):
        code = HammingSEC(136, 128)
        data = np.ones(128, dtype=np.uint8)
        result = code.decode(code.encode(data))
        assert result.status is DecodeStatus.OK
        assert np.array_equal(result.data, data)

    def test_shape_validation(self):
        code = HammingSEC(136, 128)
        with pytest.raises(ValueError):
            code.encode(np.zeros(127, dtype=np.uint8))
        with pytest.raises(ValueError):
            code.decode(np.zeros(135, dtype=np.uint8))


class TestHsiaoSECDED:
    def test_classic_dimensions(self):
        code = HsiaoSECDED(72, 64)
        assert code.r == 8
        assert code.d_min == 4

    def test_all_columns_odd_weight(self):
        code = HsiaoSECDED(72, 64)
        weights = code.H.sum(axis=0)
        assert np.all(weights % 2 == 1)

    def test_corrects_every_single_bit_error(self):
        rng = np.random.default_rng(4)
        code = HsiaoSECDED(72, 64)
        data = rng.integers(0, 2, 64)
        cw = code.encode(data)
        for pos in range(72):
            word = cw.copy()
            word[pos] ^= 1
            result = code.decode(word)
            assert result.status is DecodeStatus.CORRECTED
            assert np.array_equal(result.data, data)

    def test_detects_every_double_bit_error(self):
        """SEC-DED guarantee: exhaustive over all C(72,2) doubles."""
        code = HsiaoSECDED(72, 64)
        cw = code.encode(np.zeros(64, dtype=np.uint8))
        for a, b in itertools.combinations(range(72), 2):
            word = cw.copy()
            word[a] ^= 1
            word[b] ^= 1
            assert code.decode(word).status is DecodeStatus.DETECTED, (a, b)

    def test_triples_usually_miscorrect(self):
        """Weight-3 errors have odd syndromes: they evade the DED check."""
        rng = np.random.default_rng(5)
        code = HsiaoSECDED(72, 64)
        cw = code.encode(np.zeros(64, dtype=np.uint8))
        outcomes = {"mis": 0, "det": 0}
        for _ in range(200):
            word = cw.copy()
            for p in rng.choice(72, 3, replace=False):
                word[p] ^= 1
            result = code.decode(word)
            if result.status is DecodeStatus.CORRECTED:
                outcomes["mis"] += 1
            else:
                outcomes["det"] += 1
        assert outcomes["mis"] > 0  # the SDC path the XED/rank models measure
