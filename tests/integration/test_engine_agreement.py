"""Three-engine agreement: exact datapath MC vs fast symbol MC vs analytic.

The reliability story rests on three implementations of the same question
("what fraction of reads fail?") with very different mechanics.  At a BER
where all three have statistics, they must agree.
"""

import pytest

from repro.faults import FaultRates
from repro.reliability import (
    ExactRunConfig,
    RareEventParams,
    run_fast,
    run_iid,
    run_rareevent_iid,
    run_splitting_iid,
    wilson_interval,
)
from repro.schemes import Duo, PairScheme


def iid_rates(ber):
    return FaultRates(
        single_cell_ber=ber, row_faults_per_device=0.0, column_faults_per_device=0.0,
        pin_faults_per_device=0.0, mat_faults_per_device=0.0,
        transfer_burst_per_access=0.0,
    )


@pytest.mark.parametrize(
    "scheme_factory,ber",
    [(PairScheme, 3e-3), (Duo, 1e-2)],
    ids=["pair", "duo"],
)
def test_three_engines_agree_on_due(scheme_factory, ber, get_scheme, get_model):
    scheme = get_scheme(scheme_factory)
    exact_trials = 300
    exact = run_iid(scheme, iid_rates(ber), ExactRunConfig(trials=exact_trials, seed=21))
    fast = run_fast(scheme, ber, trials=50_000, seed=21)
    analytic = get_model(scheme, 300, seed=21).line_probs(ber)["due"]

    lo, hi = wilson_interval(exact.due, exact_trials)
    # fast and analytic both sit inside (slightly widened) exact confidence
    slack = 0.03
    assert lo - slack <= fast.due_rate <= hi + slack
    assert lo - slack <= analytic <= hi + slack
    # and fast agrees tightly with analytic (same tables, sampled mixing)
    assert fast.due_rate == pytest.approx(analytic, rel=0.15)


@pytest.mark.parametrize(
    "scheme_factory,ber",
    [(PairScheme, 3e-3), (Duo, 1e-2)],
    ids=["pair", "duo"],
)
def test_rareevent_engine_joins_the_agreement(
    scheme_factory, ber, get_scheme, get_model
):
    """The tilted estimator must agree with the other engines where they
    all have statistics - not only in the deep tail it was built for."""
    scheme = get_scheme(scheme_factory)
    exact_trials = 300
    exact = run_iid(
        scheme, iid_rates(ber), ExactRunConfig(trials=exact_trials, seed=21)
    )
    analytic = get_model(scheme, 300, seed=21).line_probs(ber)
    rare = run_rareevent_iid(
        scheme, iid_rates(ber), ExactRunConfig(trials=60_000, seed=21),
        RareEventParams(tilt="auto", samples=300, table_seed=21),
    )
    fail_est = rare.estimates()["outcomes"]["fail"]

    # inside the (slightly widened) exact engine's confidence band
    lo, hi = wilson_interval(exact.due + exact.sdc, exact_trials)
    slack = 0.03
    assert lo - slack <= fail_est["p_ht"] <= hi + slack
    # and tightly on the analytic closed form (same conditional tables)
    assert fail_est["p_ht"] == pytest.approx(
        analytic["due"] + analytic["sdc"], rel=0.15
    )


def test_splitting_engine_joins_the_agreement(get_scheme, get_model):
    scheme = get_scheme(PairScheme)
    ber = 3e-3
    analytic = get_model(scheme, 300, seed=21).line_probs(ber)
    split = run_splitting_iid(scheme, iid_rates(ber), effort=4_096, seed=21,
                              samples=300, table_seed=21)
    lo, hi = split.interval(split.p_fail, z=3.0)
    assert lo <= analytic["due"] + analytic["sdc"] <= hi
