"""Three-engine agreement: exact datapath MC vs fast symbol MC vs analytic.

The reliability story rests on three implementations of the same question
("what fraction of reads fail?") with very different mechanics.  At a BER
where all three have statistics, they must agree.
"""

import pytest

from repro.faults import FaultRates
from repro.reliability import (
    ExactRunConfig,
    run_fast,
    run_iid,
    wilson_interval,
)
from repro.schemes import Duo, PairScheme


def iid_rates(ber):
    return FaultRates(
        single_cell_ber=ber, row_faults_per_device=0.0, column_faults_per_device=0.0,
        pin_faults_per_device=0.0, mat_faults_per_device=0.0,
        transfer_burst_per_access=0.0,
    )


@pytest.mark.parametrize(
    "scheme_factory,ber",
    [(PairScheme, 3e-3), (Duo, 1e-2)],
    ids=["pair", "duo"],
)
def test_three_engines_agree_on_due(scheme_factory, ber, get_scheme, get_model):
    scheme = get_scheme(scheme_factory)
    exact_trials = 300
    exact = run_iid(scheme, iid_rates(ber), ExactRunConfig(trials=exact_trials, seed=21))
    fast = run_fast(scheme, ber, trials=50_000, seed=21)
    analytic = get_model(scheme, 300, seed=21).line_probs(ber)["due"]

    lo, hi = wilson_interval(exact.due, exact_trials)
    # fast and analytic both sit inside (slightly widened) exact confidence
    slack = 0.03
    assert lo - slack <= fast.due_rate <= hi + slack
    assert lo - slack <= analytic <= hi + slack
    # and fast agrees tightly with analytic (same tables, sampled mixing)
    assert fast.due_rate == pytest.approx(analytic, rel=0.15)
