"""Seed-stability: the paper-level conclusions must not depend on one seed.

The F5 performance ordering (PAIR ~ baseline > DUO > XED) and the F2
reliability ordering are the reproduction's conclusions; this test re-draws
the workload traces with different seeds and checks the ordering survives.
"""

from dataclasses import replace

import pytest

from repro.dram import AddressMapper, RANK_X8_5CHIP
from repro.perf import TraceConfig, generate_trace, simulate
from repro.schemes import Duo, NoEcc, PairScheme, Xed


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_f5_ordering_stable_across_seeds(seed):
    mapper = AddressMapper(RANK_X8_5CHIP)
    cfg = TraceConfig(
        name="stability", requests=8000, arrival_rate=0.065,
        write_fraction=0.45, masked_write_fraction=0.15, row_locality=0.6,
        seed=seed,
    )
    trace = generate_trace(cfg, mapper)
    throughput = {
        s.name: simulate(trace, s.timing_overlay, s.name, cfg.name).throughput
        for s in (NoEcc(), Xed(), Duo(), PairScheme())
    }
    assert throughput["pair"] > throughput["duo"] > throughput["xed"], (seed, throughput)
    assert throughput["pair"] > 0.95 * throughput["no-ecc"], (seed, throughput)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_f2_ordering_stable_across_conditional_seeds(seed):
    """The reliability ordering survives re-measuring the decoder tables."""
    from repro.reliability import build_model

    p = 3e-6
    fails = {}
    for scheme in (Xed(), Duo(), PairScheme()):
        model = build_model(scheme, samples=200, seed=seed)
        probs = model.line_probs(p)
        fails[scheme.name] = probs["sdc"] + probs["due"]
    assert fails["pair"] < fails["duo"] < fails["xed"], (seed, fails)
