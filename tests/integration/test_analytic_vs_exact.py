"""Cross-validation: the semi-analytic models against decoder-in-the-loop MC.

These are the tests that justify trusting the F2 sweep down to 1e-20: at an
elevated BER where direct Monte Carlo has enough statistics, both engines
must agree on the failure probabilities of every scheme.
"""

import pytest

from repro.faults import FaultRates
from repro.reliability import (
    ExactRunConfig,
    run_iid,
    wilson_interval,
)
from repro.schemes import ConventionalIecc, Duo, NoEcc, PairScheme, Xed

TRIALS = 400


def iid_rates(ber):
    return FaultRates(
        single_cell_ber=ber, row_faults_per_device=0.0, column_faults_per_device=0.0,
        pin_faults_per_device=0.0, mat_faults_per_device=0.0,
        transfer_burst_per_access=0.0,
    )


def agreement(get_model, scheme, ber, metric, seed=11):
    tally = run_iid(scheme, iid_rates(ber), ExactRunConfig(trials=TRIALS, seed=seed))
    model = get_model(scheme, 300, seed=seed)
    predicted = model.line_probs(ber)[metric]
    observed = getattr(tally, metric)
    lo, hi = wilson_interval(observed, TRIALS)
    return predicted, observed / TRIALS, lo, hi


class TestAgreement:
    def test_no_ecc_sdc(self, get_scheme, get_model):
        predicted, _, lo, hi = agreement(get_model, get_scheme(NoEcc), 1.5e-3, "sdc")
        assert lo <= predicted <= hi

    def test_conventional_sdc(self, get_scheme, get_model):
        predicted, _, lo, hi = agreement(
            get_model, get_scheme(ConventionalIecc), 4e-3, "sdc")
        assert lo <= predicted <= hi

    def test_xed_sdc(self, get_scheme, get_model):
        predicted, _, lo, hi = agreement(get_model, get_scheme(Xed), 6e-3, "sdc")
        assert lo <= predicted <= hi

    def test_duo_due(self, get_scheme, get_model):
        # Slightly widened band: at BER this high a few percent of symbol
        # errors are multi-bit, outside the tables' single-bit regime.
        predicted, observed, lo, hi = agreement(
            get_model, get_scheme(Duo), 1e-2, "due")
        assert lo - 0.02 <= predicted <= hi + 0.02

    def test_pair_due(self, get_scheme, get_model):
        predicted, _, lo, hi = agreement(get_model, get_scheme(PairScheme), 4e-3, "due")
        assert lo <= predicted <= hi

    def test_pair_correction_region_has_no_failures(self):
        """At moderate BER every weak-cell pattern stays within t = 8."""
        tally = run_iid(
            PairScheme(), iid_rates(2e-4), ExactRunConfig(trials=150, seed=12)
        )
        assert tally.failure_rate == 0.0
        assert tally.ce > 0  # but corrections did happen
