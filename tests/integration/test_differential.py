"""Differential sweep: every scheme, three independent answers, one truth.

For each of the seven schemes in the lineup (the five defaults plus the
rank-level SECDED baseline and PAIR with erasure decoding), the same
question - "what fraction of reads fail at this BER?" - is answered by
three unrelated mechanisms:

1. the semi-analytic model (:func:`repro.reliability.build_model`);
2. the batched Monte-Carlo engine (:func:`repro.reliability.run_iid_batched`);
3. the scalar fallback path (:meth:`EccScheme.read_lines_sequential`).

(1) must sit inside a Wilson confidence band of (2) at an elevated BER
chosen per scheme so failures are observable, and (2) must be bit-identical
to (3) - not statistically close, *identical*.  A regression in any layer
(codes, galois kernels, scheme datapaths, engines) breaks at least one leg.

The ``pair`` and ``xed`` cases double as the fast CI smoke subset; the
remaining schemes are marked ``slow``.
"""

import pytest

from repro.faults import FaultRates, FaultType
from repro.reliability import (
    ExactRunConfig,
    run_iid_batched,
    wilson_interval,
)
from repro.reliability.batch import (
    iid_chunk_tally,
    iid_chunk_tally_sequential,
    iid_epochs,
    single_fault_chunk_tally,
    single_fault_chunk_tally_sequential,
    single_fault_specs,
)
from repro.schemes import (
    ConventionalIecc,
    DefectMap,
    Duo,
    NoEcc,
    PairErasureScheme,
    PairScheme,
    RankSecDed,
    Xed,
)

TRIALS = 300
SEED = 33


def iid_rates(ber):
    return FaultRates(
        single_cell_ber=ber, row_faults_per_device=0.0, column_faults_per_device=0.0,
        pin_faults_per_device=0.0, mat_faults_per_device=0.0,
        transfer_burst_per_access=0.0,
    )


def counts(tally):
    return (tally.ok, tally.ce, tally.due, tally.sdc)


def pair_erasure():
    # An empty defect map: erasure decoding degenerates to plain PAIR, which
    # is the regime where the batched override (inherited from PairScheme)
    # and the scalar read_line are defined to agree.
    return PairErasureScheme(defect_map=DefectMap())


# (factory, elevated BER, wilson-band slack).  BERs are chosen so the
# dominant failure mode of each scheme is observable in TRIALS trials
# without saturating at probability 1; slack absorbs the analytic models'
# known single-bit-regime approximation at these BERs.
CASES = {
    "no-ecc": (NoEcc, 1.5e-3, 0.02),
    "iecc-sec": (ConventionalIecc, 4e-3, 0.03),
    "rank-secded": (RankSecDed, 2.5e-3, 0.03),
    "xed": (Xed, 6e-3, 0.03),
    "duo": (Duo, 1e-2, 0.04),
    "pair": (PairScheme, 2.5e-3, 0.03),
    "pair-erasure": (pair_erasure, 2.5e-3, 0.03),
}

#: fast CI subset; everything else carries the ``slow`` marker.
SMOKE = {"pair", "xed"}


def scheme_params():
    return [
        pytest.param(name, id=name,
                     marks=() if name in SMOKE else pytest.mark.slow)
        for name in CASES
    ]


@pytest.mark.parametrize("name", scheme_params())
def test_analytic_within_wilson_of_batched_mc(name, get_scheme, get_model):
    factory, ber, slack = CASES[name]
    scheme = get_scheme(factory)
    tally = run_iid_batched(
        scheme, iid_rates(ber), ExactRunConfig(trials=TRIALS, seed=SEED)
    )
    probs = get_model(scheme, 300, seed=SEED).line_probs(ber)
    for metric in ("sdc", "due"):
        lo, hi = wilson_interval(getattr(tally, metric), TRIALS)
        assert lo - slack <= probs[metric] <= hi + slack, (
            f"{name}: analytic {metric}={probs[metric]:.4f} outside "
            f"[{lo:.4f}, {hi:.4f}] +/- {slack} "
            f"(MC observed {getattr(tally, metric)}/{TRIALS})"
        )


@pytest.mark.parametrize("name", scheme_params())
def test_mc_failures_are_observable(name, get_scheme):
    """The elevated BER must actually exercise the decoder: a differential
    test against an all-OK tally proves nothing."""
    factory, ber, _ = CASES[name]
    tally = run_iid_batched(
        get_scheme(factory), iid_rates(ber), ExactRunConfig(trials=TRIALS, seed=SEED)
    )
    assert tally.due + tally.sdc > 0, f"{name}: no failures at ber={ber:g}"


@pytest.mark.parametrize("name", [pytest.param(n, id=n) for n in CASES])
def test_batched_bit_identical_to_scalar_fallback(name, get_scheme):
    factory, ber, _ = CASES[name]
    scheme = get_scheme(factory)
    rates = iid_rates(ber)
    config = ExactRunConfig(trials=48, seed=7, resample_faults_every=8)
    epochs = iid_epochs(scheme, config)
    a = iid_chunk_tally(scheme, rates, epochs)
    b = iid_chunk_tally_sequential(scheme, rates, epochs)
    assert counts(a) == counts(b), name


@pytest.mark.parametrize("kind", [FaultType.PIN_LINE, FaultType.TRANSFER_BURST])
def test_single_fault_batched_bit_identical_to_scalar(kind):
    from repro.faults import DEFAULT_RATES

    scheme = PairScheme()
    config = ExactRunConfig(trials=16, seed=3)
    specs = single_fault_specs(scheme, kind, DEFAULT_RATES, config)
    clean = DEFAULT_RATES.with_ber(0.0)
    a = single_fault_chunk_tally(scheme, clean, config.seed, specs)
    b = single_fault_chunk_tally_sequential(scheme, clean, config.seed, specs)
    assert counts(a) == counts(b), kind
