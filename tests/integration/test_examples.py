"""Smoke tests: the shipped examples must run end to end."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


def test_quickstart_runs(capsys):
    run_example("quickstart")
    out = capsys.readouterr().out
    assert "corrected 8 symbols" in out
    assert "detected uncorrectable" in out


def test_burst_errors_runs(capsys):
    run_example("burst_errors")
    out = capsys.readouterr().out
    assert "pin-aligned" in out


def test_maintenance_loop_runs(capsys):
    run_example("maintenance_loop")
    out = capsys.readouterr().out
    assert "RETIRED" in out
    assert "after maintenance: ok" in out


def test_device_width_study_runs(capsys):
    run_example("device_width_study")
    out = capsys.readouterr().out
    assert "one decoder design" in out
    assert "ddr5-x16" in out


@pytest.mark.slow
def test_custom_scheme_runs(capsys):
    run_example("custom_scheme")
    out = capsys.readouterr().out
    assert "ext-RS(128,120)" in out
