"""End-to-end datapath tests: every scheme under the composite fault model.

Unlike the reliability engine (which reads zero-filled devices), these tests
push real random data through the write paths with fault overlays attached,
verifying the storage layouts, parity maintenance and decode paths compose
correctly under fire.
"""

import numpy as np
import pytest

from repro.faults import FaultOverlay, FaultRates
from repro.reliability import Outcome, classify
from repro.schemes import default_schemes


def overlayed_chips(scheme, rates, seed):
    overlays = [
        FaultOverlay(scheme.rank.device, rates, seed=seed * 101 + c)
        for c in range(scheme.rank.chips)
    ]
    return scheme.make_devices(overlays)


LIGHT = FaultRates(
    single_cell_ber=1e-5, row_faults_per_device=0.0, column_faults_per_device=0.0,
    pin_faults_per_device=0.0, mat_faults_per_device=0.0,
)


class TestWriteReadUnderFaults:
    @pytest.mark.parametrize("scheme", default_schemes(), ids=lambda s: s.name)
    def test_light_faults_never_corrupt_protected_schemes(self, scheme):
        rng = np.random.default_rng(42)
        chips = overlayed_chips(scheme, LIGHT, seed=9)
        rows = [(0, 5, 3), (1, 77, 100), (3, 1000, 250)]
        written = {}
        for bank, row, col in rows:
            data = rng.integers(0, 2, scheme.line_shape).astype(np.uint8)
            scheme.write_line(chips, bank, row, col, data)
            written[(bank, row, col)] = data
        for (bank, row, col), data in written.items():
            result = scheme.read_line(chips, bank, row, col)
            outcome = classify(result, data)
            if scheme.name == "no-ecc":
                assert outcome in (Outcome.OK, Outcome.SDC)
            else:
                # at 1e-5 BER, words carry at most a couple of weak cells
                assert outcome in (Outcome.OK, Outcome.CE), scheme.name

    @pytest.mark.parametrize("scheme", default_schemes(), ids=lambda s: s.name)
    def test_many_writes_then_reads_consistent(self, scheme):
        """Write/overwrite traffic across segments with a clean universe."""
        rng = np.random.default_rng(7)
        chips = scheme.make_devices()
        state = {}
        for _ in range(40):
            col = int(rng.integers(0, scheme.rank.device.columns_per_row))
            data = rng.integers(0, 2, scheme.line_shape).astype(np.uint8)
            scheme.write_line(chips, 0, 3, col, data)
            state[col] = data
        for col, data in state.items():
            result = scheme.read_line(chips, 0, 3, col)
            assert result.believed_good
            assert np.array_equal(result.data, data), (scheme.name, col)


class TestStructuredFaultSeverityOrdering:
    def test_pair_survives_column_fault_where_sec_corrupts(self):
        """A column defect plus one weak cell: SEC word gets 2 errors
        (silent corruption); the pin-aligned RS shrugs it off."""
        from repro.faults import FaultInstance, FaultType
        from repro.schemes import ConventionalIecc, PairScheme

        rng = np.random.default_rng(3)
        outcomes = {}
        column = FaultInstance(
            FaultType.COLUMN, bank=0, row_start=0, row_count=65536,
            pin=0, bit_start=5, bit_count=1, density=1.0,
        )
        weak = FaultInstance(
            FaultType.COLUMN, bank=0, row_start=0, row_count=65536,
            pin=3, bit_start=9, bit_count=1, density=1.0,
        )
        for scheme in (ConventionalIecc(), PairScheme()):
            clean = FaultRates(
                single_cell_ber=0.0, row_faults_per_device=0, column_faults_per_device=0,
                pin_faults_per_device=0, mat_faults_per_device=0,
            )
            overlays = [None] * scheme.rank.chips
            overlays[0] = FaultOverlay(
                scheme.rank.device, clean, seed=1, faults=[column, weak]
            )
            chips = scheme.make_devices(overlays)
            data = rng.integers(0, 2, scheme.line_shape).astype(np.uint8)
            scheme.write_line(chips, 0, 10, 0, data)
            result = scheme.read_line(chips, 0, 10, 0)
            outcomes[scheme.name] = classify(result, data)
        assert outcomes["iecc-sec"] is Outcome.SDC
        assert outcomes["pair"] is Outcome.CE
