"""Tests for fault-rate configuration."""

import pytest

from repro.faults import DEFAULT_RATES, FaultRates, FaultType


class TestFaultRates:
    def test_with_ber(self):
        r = DEFAULT_RATES.with_ber(1e-3)
        assert r.single_cell_ber == 1e-3
        assert r.row_faults_per_device == DEFAULT_RATES.row_faults_per_device

    @pytest.mark.parametrize("kind", list(FaultType))
    def test_only_isolates_one_class(self, kind):
        isolated = DEFAULT_RATES.only(kind)
        active = {
            FaultType.SINGLE_CELL: isolated.single_cell_ber,
            FaultType.ROW: isolated.row_faults_per_device,
            FaultType.COLUMN: isolated.column_faults_per_device,
            FaultType.PIN_LINE: isolated.pin_faults_per_device,
            FaultType.MAT: isolated.mat_faults_per_device,
            FaultType.TRANSFER_BURST: isolated.transfer_burst_per_access,
        }
        for k, value in active.items():
            if k is kind:
                assert value > 0, f"{kind} should stay active"
            else:
                assert value == 0, f"{k} should be zeroed when isolating {kind}"

    def test_only_preserves_densities(self):
        isolated = DEFAULT_RATES.only(FaultType.ROW)
        assert isolated.row_density == DEFAULT_RATES.row_density
        assert isolated.mat_rows == DEFAULT_RATES.mat_rows

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_RATES.single_cell_ber = 0.5
