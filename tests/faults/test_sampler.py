"""Tests for fault sampling and mask materialisation."""

import numpy as np

from repro.dram import DDR5_X8
from repro.faults import (
    FaultInstance,
    FaultOverlay,
    FaultRates,
    FaultSampler,
    FaultType,
    TransferBurst,
    burst_mask,
    sample_transfer_burst,
)

SHAPE = (8, 8192)


def clean_rates(**overrides):
    base = dict(
        single_cell_ber=0.0, row_faults_per_device=0.0, column_faults_per_device=0.0,
        pin_faults_per_device=0.0, mat_faults_per_device=0.0,
        transfer_burst_per_access=0.0,
    )
    base.update(overrides)
    return FaultRates(**base)


class TestSampler:
    def test_deterministic_per_seed(self):
        rates = FaultRates(row_faults_per_device=5.0, column_faults_per_device=5.0)
        a = FaultSampler(DDR5_X8, rates, seed=7).sample_faults()
        b = FaultSampler(DDR5_X8, rates, seed=7).sample_faults()
        assert a == b
        c = FaultSampler(DDR5_X8, rates, seed=8).sample_faults()
        assert a != c  # overwhelmingly likely with 10 expected faults

    def test_poisson_counts_track_rates(self):
        rates = clean_rates(column_faults_per_device=3.0)
        counts = [
            len(FaultSampler(DDR5_X8, rates, seed=s).sample_faults())
            for s in range(200)
        ]
        mean = np.mean(counts)
        assert 2.5 < mean < 3.5

    def test_fault_geometries(self):
        rates = FaultRates(
            row_faults_per_device=3.0, column_faults_per_device=3.0,
            pin_faults_per_device=3.0, mat_faults_per_device=3.0,
        )
        faults = [
            f
            for seed in range(5)
            for f in FaultSampler(DDR5_X8, rates, seed=seed).sample_faults()
        ]
        kinds = {f.kind for f in faults}
        assert kinds >= {FaultType.ROW, FaultType.COLUMN, FaultType.PIN_LINE, FaultType.MAT}
        for f in faults:
            if f.kind is FaultType.ROW:
                assert f.pin == -1 and f.row_count == 1
            if f.kind is FaultType.COLUMN:
                assert f.bit_count == 1 and f.row_count == rates.column_rows
            if f.kind is FaultType.PIN_LINE:
                assert f.row_count == DDR5_X8.rows_per_bank
            if f.kind is FaultType.MAT:
                assert f.row_count == rates.mat_rows and f.bit_count == rates.mat_bits


class TestOverlay:
    def test_mask_deterministic(self):
        overlay = FaultOverlay(DDR5_X8, FaultRates(single_cell_ber=1e-3), seed=1)
        m1 = overlay.mask_for_row(0, 10, SHAPE)
        overlay2 = FaultOverlay(DDR5_X8, FaultRates(single_cell_ber=1e-3), seed=1)
        m2 = overlay2.mask_for_row(0, 10, SHAPE)
        assert np.array_equal(m1, m2)

    def test_clean_row_returns_none(self):
        overlay = FaultOverlay(DDR5_X8, clean_rates(), seed=2, faults=[])
        assert overlay.mask_for_row(0, 0, SHAPE) is None

    def test_single_cell_ber_statistics(self):
        overlay = FaultOverlay(DDR5_X8, clean_rates(single_cell_ber=1e-3), seed=3, faults=[])
        total = 0
        for row in range(20):
            mask = overlay.mask_for_row(0, row, SHAPE)
            total += int(mask.sum()) if mask is not None else 0
        expected = 20 * SHAPE[0] * SHAPE[1] * 1e-3
        assert 0.7 * expected < total < 1.3 * expected

    def test_forced_column_fault_hits_exactly_one_bitline(self):
        fault = FaultInstance(
            FaultType.COLUMN, bank=0, row_start=0, row_count=100,
            pin=3, bit_start=77, bit_count=1, density=1.0,
        )
        overlay = FaultOverlay(DDR5_X8, clean_rates(), seed=4, faults=[fault])
        mask = overlay.mask_for_row(0, 50, SHAPE)
        assert mask[3, 77] == 1
        assert mask.sum() == 1
        assert overlay.mask_for_row(0, 100, SHAPE) is None  # outside range
        assert overlay.mask_for_row(1, 50, SHAPE) is None  # other bank

    def test_forced_row_fault_spans_all_pins(self):
        fault = FaultInstance(
            FaultType.ROW, bank=2, row_start=9, row_count=1,
            pin=-1, bit_start=0, bit_count=8192, density=0.5,
        )
        overlay = FaultOverlay(DDR5_X8, clean_rates(), seed=5, faults=[fault])
        mask = overlay.mask_for_row(2, 9, SHAPE)
        per_pin = mask.sum(axis=1)
        assert np.all(per_pin > 3000)  # ~4096 expected per pin

    def test_density_controls_intensity(self):
        fault_lo = FaultInstance(
            FaultType.MAT, bank=0, row_start=0, row_count=1,
            pin=0, bit_start=0, bit_count=1000, density=0.1,
        )
        fault_hi = FaultInstance(
            FaultType.MAT, bank=0, row_start=0, row_count=1,
            pin=0, bit_start=0, bit_count=1000, density=0.9,
        )
        lo = FaultOverlay(DDR5_X8, clean_rates(), seed=6, faults=[fault_lo])
        hi = FaultOverlay(DDR5_X8, clean_rates(), seed=6, faults=[fault_hi])
        assert hi.mask_for_row(0, 0, SHAPE).sum() > lo.mask_for_row(0, 0, SHAPE).sum()

    def test_faults_in_row_lookup(self):
        fault = FaultInstance(
            FaultType.PIN_LINE, bank=1, row_start=0, row_count=DDR5_X8.rows_per_bank,
            pin=2, bit_start=0, bit_count=8192, density=0.5,
        )
        overlay = FaultOverlay(DDR5_X8, clean_rates(), seed=7, faults=[fault])
        assert overlay.faults_in_row(1, 123) == [fault]
        assert overlay.faults_in_row(0, 123) == []


class TestTransferBursts:
    def test_sampling_respects_probability(self):
        rng = np.random.default_rng(0)
        rates = clean_rates(transfer_burst_per_access=1.0, )
        rates = FaultRates(
            single_cell_ber=0, row_faults_per_device=0, column_faults_per_device=0,
            pin_faults_per_device=0, mat_faults_per_device=0,
            transfer_burst_per_access=1.0, transfer_burst_length=8,
        )
        burst = sample_transfer_burst(rng, DDR5_X8, rates)
        assert burst is not None
        assert 0 <= burst.pin < 8
        assert burst.beat_start + burst.length <= 16

    def test_zero_probability_never_samples(self):
        rng = np.random.default_rng(1)
        assert sample_transfer_burst(rng, DDR5_X8, clean_rates()) is None

    def test_burst_mask_geometry(self):
        mask = burst_mask(DDR5_X8, TransferBurst(pin=5, beat_start=4, length=8))
        assert mask.shape == (8, 16)
        assert mask.sum() == 8
        assert mask[5, 4:12].all()


class TestCellClusters:
    def test_clusters_flip_adjacent_pairs(self):
        rates = FaultRates(
            single_cell_ber=0.0, cell_cluster_per_bit=5e-4,
            row_faults_per_device=0, column_faults_per_device=0,
            pin_faults_per_device=0, mat_faults_per_device=0,
        )
        overlay = FaultOverlay(DDR5_X8, rates, seed=8, faults=[])
        mask = overlay.mask_for_row(0, 0, SHAPE)
        assert mask is not None
        # every flipped bit has a flipped along-pin neighbour
        import numpy as np

        pins, offs = np.nonzero(mask)
        for p, o in zip(pins, offs):
            left = o > 0 and mask[p, o - 1]
            right = o < SHAPE[1] - 1 and mask[p, o + 1]
            assert left or right, (p, o)

    def test_cluster_rate_statistics(self):
        rates = FaultRates(
            single_cell_ber=0.0, cell_cluster_per_bit=1e-3,
            row_faults_per_device=0, column_faults_per_device=0,
            pin_faults_per_device=0, mat_faults_per_device=0,
        )
        overlay = FaultOverlay(DDR5_X8, rates, seed=9, faults=[])
        total = sum(
            int(m.sum())
            for m in (overlay.mask_for_row(0, r, SHAPE) for r in range(10))
            if m is not None
        )
        expected = 2 * 10 * SHAPE[0] * SHAPE[1] * 1e-3
        assert 0.7 * expected < total < 1.3 * expected

    def test_only_preserves_cluster_isolation(self):
        rates = FaultRates(cell_cluster_per_bit=1e-3)
        isolated = rates.only(FaultType.SINGLE_CELL)
        assert isolated.cell_cluster_per_bit == 0.0
