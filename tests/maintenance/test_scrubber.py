"""Tests for patrol scrubbing."""

import numpy as np
import pytest

from repro.faults import FaultInstance, FaultOverlay, FaultRates, FaultType
from repro.maintenance import ScrubReport, Scrubber
from repro.schemes import PairScheme


def clean_rates(**overrides):
    base = dict(
        single_cell_ber=0.0, row_faults_per_device=0.0, column_faults_per_device=0.0,
        pin_faults_per_device=0.0, mat_faults_per_device=0.0,
        transfer_burst_per_access=0.0,
    )
    base.update(overrides)
    return FaultRates(**base)


def make_system(faults=(), ber=0.0, seed=1):
    scheme = PairScheme()
    overlays = [None] * scheme.rank.chips
    overlays[0] = FaultOverlay(
        scheme.rank.device, clean_rates(single_cell_ber=ber), seed=seed,
        faults=list(faults),
    )
    chips = scheme.make_devices(overlays)
    return scheme, chips


def row_fault(row, density=0.5):
    return FaultInstance(
        FaultType.ROW, bank=0, row_start=row, row_count=1, pin=-1,
        bit_start=0, bit_count=8192, density=density,
    )


def cell_fault(row, pin, offset):
    """A single persistent weak cell, as a degenerate mat."""
    return FaultInstance(
        FaultType.MAT, bank=0, row_start=row, row_count=1, pin=pin,
        bit_start=offset, bit_count=1, density=1.0,
    )


class TestScrubber:
    def test_clean_rows_report_clean(self):
        scheme, chips = make_system()
        report = Scrubber(scheme, chips).scrub(banks=(0,), rows=(1, 2), col_stride=60)
        assert report.lines_scanned == 16  # 480/60 cols x 2 rows
        assert report.corrected_lines == 0
        assert report.uncorrectable_lines == 0
        assert all(h.clean for h in report.rows.values())

    def test_weak_cells_show_as_corrections(self):
        scheme, chips = make_system(faults=[cell_fault(5, pin=0, offset=3)])
        report = Scrubber(scheme, chips).scrub(banks=(0,), rows=(5,), col_stride=8)
        # the cell sits in segment 0: every scrubbed access of that segment
        # decodes codeword 0 and corrects it
        health = report.rows[(0, 5)]
        assert health.corrected_lines > 0
        assert health.uncorrectable_lines == 0

    def test_row_fault_reports_uncorrectable(self):
        scheme, chips = make_system(faults=[row_fault(9)])
        report = Scrubber(scheme, chips).scrub(banks=(0,), rows=(9,), col_stride=60)
        assert report.rows[(0, 9)].uncorrectable_lines == report.rows[(0, 9)].lines

    def test_degraded_rows_thresholds(self):
        scheme, chips = make_system(faults=[row_fault(9)])
        scrubber = Scrubber(scheme, chips)
        report = scrubber.scrub(banks=(0,), rows=(8, 9), col_stride=120)
        degraded = report.degraded_rows(due_line_threshold=1)
        assert degraded == [(0, 9)]

    def test_stride_controls_coverage(self):
        scheme, chips = make_system()
        scrubber = Scrubber(scheme, chips)
        fine = scrubber.scrub(banks=(0,), rows=(0,), col_stride=1)
        coarse = scrubber.scrub(banks=(0,), rows=(0,), col_stride=48)
        assert fine.lines_scanned == 480
        assert coarse.lines_scanned == 10

    def test_report_accumulates_across_rows(self):
        report = ScrubReport()
        report.health(0, 1).lines = 4
        report.health(0, 2).corrected_lines = 1
        assert report.lines_scanned == 4
        assert report.corrected_lines == 1
