"""Tests for row sparing and the maintenance controller."""

import numpy as np
import pytest

from repro.faults import FaultInstance, FaultOverlay, FaultRates, FaultType
from repro.maintenance import MaintenanceController, SpareExhausted, SpareManager
from repro.schemes import PairScheme


def clean_rates():
    return FaultRates(
        single_cell_ber=0.0, row_faults_per_device=0.0, column_faults_per_device=0.0,
        pin_faults_per_device=0.0, mat_faults_per_device=0.0,
        transfer_burst_per_access=0.0,
    )


def row_fault(row, density=0.5):
    return FaultInstance(
        FaultType.ROW, bank=0, row_start=row, row_count=1, pin=-1,
        bit_start=0, bit_count=8192, density=density,
    )


def controller_with_faults(faults=(), spare_rows=8):
    scheme = PairScheme()
    overlays = [None] * scheme.rank.chips
    overlays[0] = FaultOverlay(
        scheme.rank.device, clean_rates(), seed=2, faults=list(faults)
    )
    chips = scheme.make_devices(overlays)
    return MaintenanceController(scheme, chips, spare_rows_per_bank=spare_rows)


class TestSpareManager:
    def test_identity_until_retired(self):
        spares = SpareManager(rows_per_bank=1024, spare_rows_per_bank=8)
        assert spares.resolve(0, 5) == 5
        assert not spares.is_retired(0, 5)

    def test_retire_allocates_from_spare_region(self):
        spares = SpareManager(rows_per_bank=1024, spare_rows_per_bank=8)
        spare = spares.retire(0, 5)
        assert spare == 1016  # first spare row
        assert spares.resolve(0, 5) == spare
        assert spares.retired_count == 1

    def test_retire_is_idempotent(self):
        spares = SpareManager(rows_per_bank=1024, spare_rows_per_bank=8)
        first = spares.retire(0, 5)
        assert spares.retire(0, 5) == first
        assert spares.retired_count == 1

    def test_exhaustion(self):
        spares = SpareManager(rows_per_bank=1024, spare_rows_per_bank=2)
        spares.retire(0, 1)
        spares.retire(0, 2)
        with pytest.raises(SpareExhausted):
            spares.retire(0, 3)

    def test_banks_have_independent_pools(self):
        spares = SpareManager(rows_per_bank=1024, spare_rows_per_bank=1)
        spares.retire(0, 1)
        spares.retire(1, 1)  # different bank: its own pool

    def test_validation(self):
        with pytest.raises(ValueError):
            SpareManager(rows_per_bank=8, spare_rows_per_bank=8)

    def test_addressable_rows(self):
        spares = SpareManager(rows_per_bank=1024, spare_rows_per_bank=8)
        assert spares.addressable_rows() == 1016


class TestMaintenanceController:
    def test_transparent_datapath(self):
        ctl = controller_with_faults()
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, ctl.scheme.line_shape).astype(np.uint8)
        ctl.write_line(0, 5, 3, data)
        result = ctl.read_line(0, 5, 3)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_retire_migrates_data(self):
        ctl = controller_with_faults()
        rng = np.random.default_rng(1)
        lines = {}
        for col in (0, 7, 200):
            data = rng.integers(0, 2, ctl.scheme.line_shape).astype(np.uint8)
            ctl.write_line(0, 11, col, data)
            lines[col] = data
        spare = ctl.retire_row(0, 11)
        assert spare >= ctl.spares.first_spare_row
        for col, data in lines.items():
            result = ctl.read_line(0, 11, col)
            assert result.believed_good
            assert np.array_equal(result.data, data)

    def test_retirement_escapes_row_fault(self):
        """The point of sparing: the remapped row reads clean."""
        bad_row = 9
        ctl = controller_with_faults(faults=[row_fault(bad_row)])
        # before: uncorrectable
        assert not ctl.read_line(0, bad_row, 0).believed_good
        ctl.retire_row(0, bad_row)
        # after: the spare physical row has no fault
        result = ctl.read_line(0, bad_row, 0)
        assert result.believed_good

    def test_scrub_and_repair_cycle(self):
        bad_row = 9
        ctl = controller_with_faults(faults=[row_fault(bad_row)])
        report, retired = ctl.scrub_and_repair(
            banks=(0,), rows=(8, 9, 10), col_stride=120, due_line_threshold=1
        )
        assert retired == [(0, bad_row)]
        assert report.rows[(0, bad_row)].uncorrectable_lines > 0
        # and a follow-up scrub of the repaired logical row is clean
        report2, retired2 = ctl.scrub_and_repair(
            banks=(0,), rows=(9,), col_stride=120
        )
        assert retired2 == []
        assert report2.uncorrectable_lines == 0

    def test_healthy_rows_not_retired(self):
        ctl = controller_with_faults()
        report, retired = ctl.scrub_and_repair(banks=(0,), rows=(1, 2), col_stride=120)
        assert retired == []
        assert ctl.spares.retired_count == 0
