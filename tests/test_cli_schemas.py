"""Golden-schema regression tests for the CLI's machine-readable outputs.

``--json`` payloads are a contract: downstream tooling (CI dashboards,
result scrapers) keys off exact field names.  These tests pin the key sets
and value types of every JSON surface - ``report --json``,
``campaign status --json``, ``backends --json``, ``check --json``, and
``obs report --json`` - so a rename or a dropped field fails loudly here
instead of silently breaking a consumer.

Golden key sets are asserted with ``==`` (not ``<=``): adding a field is
also a schema change and should be a conscious one (update the golden set
and bump ``SNAPSHOT_VERSION`` where the obs payloads are involved).
"""

import json

import pytest

from repro.cli import main
from repro.obs.metrics import SNAPSHOT_VERSION

CAMPAIGN_ARGS = ["--scheme", "pair", "--trials", "16", "--chunk-trials", "8",
                 "--seed", "2", "--backoff", "0.01"]


def run_json(capsys, argv):
    main(argv)
    out = capsys.readouterr().out
    payload = json.loads(out)
    # --json output must be exactly one parseable document, nothing else
    assert out == json.dumps(payload, sort_keys=True) + "\n"
    return payload


class TestReportManifestSchema:
    def test_golden_keys(self, capsys):
        payload = run_json(capsys, ["report", "--json"])
        assert set(payload) == {
            "kind", "settings", "samples", "burst_trials", "trace_requests",
            "schemes", "sections",
        }
        assert payload["kind"] == "report_manifest"
        assert payload["settings"] == "quick"
        assert payload["schemes"] == ["no-ecc", "iecc-sec", "xed", "duo", "pair"]
        assert payload["sections"] == [
            "configurations", "reliability", "performance", "bursts",
            "overheads", "headroom",
        ]
        for field in ("samples", "burst_trials", "trace_requests"):
            assert isinstance(payload[field], int) and payload[field] > 0

    def test_full_flag_changes_settings_only(self, capsys):
        quick = run_json(capsys, ["report", "--json"])
        full = run_json(capsys, ["report", "--json", "--full"])
        assert full["settings"] == "full"
        assert set(full) == set(quick)
        assert full["samples"] > quick["samples"]


class TestCampaignStatusSchema:
    @pytest.fixture(scope="class")
    def campaign_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("campaign")
        main(["campaign", "run", "--dir", str(path)] + CAMPAIGN_ARGS)
        return path

    def test_golden_keys(self, capsys, campaign_dir):
        capsys.readouterr()
        payload = run_json(
            capsys, ["campaign", "status", "--dir", str(campaign_dir), "--json"]
        )
        assert set(payload) == {
            "path", "fingerprint", "scheme", "kind", "total_chunks",
            "chunks_done", "quarantined", "trials_done", "complete", "tally",
        }
        assert set(payload["tally"]) == {
            "trials", "ok", "ce", "due", "sdc", "sdc_rate", "due_rate",
        }
        assert payload["scheme"] == "pair"
        assert payload["kind"] == "iid"
        assert payload["complete"] is True
        assert payload["chunks_done"] == payload["total_chunks"] == 2
        assert payload["trials_done"] == payload["tally"]["trials"] == 16
        assert payload["quarantined"] == []
        assert isinstance(payload["fingerprint"], str) and payload["fingerprint"]


class TestBackendsSchema:
    @pytest.fixture(autouse=True)
    def _default_selection(self, monkeypatch):
        from repro.galois import backends as reg

        monkeypatch.delenv(reg.ENV_VAR, raising=False)
        reg.reset_selection()
        yield
        reg.reset_selection()

    def test_golden_keys(self, capsys):
        payload = run_json(capsys, ["backends", "--json"])
        assert set(payload) == {
            "kind", "default", "env_var", "env_value", "active", "backends",
        }
        assert payload["kind"] == "gf_backends"
        assert payload["default"] == "numpy"
        assert payload["env_var"] == "REPRO_GF_BACKEND"
        assert payload["env_value"] is None
        assert payload["active"] == "numpy"
        names = [row["name"] for row in payload["backends"]]
        assert names[:2] == ["numpy", "bitsliced"]  # available tiers first
        assert "numba" in names
        for row in payload["backends"]:
            assert set(row) == {"name", "available", "reason", "active"}
            assert isinstance(row["available"], bool)
            assert row["reason"] is None or isinstance(row["reason"], str)
            assert (row["reason"] is None) == row["available"]
            assert row["active"] == (row["name"] == payload["active"])

    def test_env_var_reflected(self, capsys, monkeypatch):
        from repro.galois import backends as reg

        monkeypatch.setenv(reg.ENV_VAR, "bitsliced")
        reg.reset_selection()
        payload = run_json(capsys, ["backends", "--json"])
        assert payload["env_value"] == "bitsliced"
        assert payload["active"] == "bitsliced"

    def test_human_output_lists_every_backend(self, capsys):
        main(["backends"])
        out = capsys.readouterr().out
        assert "active: numpy" in out
        for name in ("numpy", "bitsliced", "numba"):
            assert name in out


class TestCheckSchema:
    def test_golden_keys_clean(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        payload = run_json(
            capsys,
            ["check", str(tmp_path), "--json",
             "--baseline", str(tmp_path / "bl.json")],
        )
        assert set(payload) == {
            "ok", "files_checked", "violation_count", "baseline_suppressed",
            "violations",
        }
        assert payload["ok"] is True
        assert payload["files_checked"] == 1
        assert payload["violation_count"] == 0
        assert payload["baseline_suppressed"] == 0
        assert payload["violations"] == []

    def test_golden_keys_dirty_and_exit_code(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        with pytest.raises(SystemExit) as exc:
            main(["check", str(tmp_path), "--json",
                  "--baseline", str(tmp_path / "bl.json")])
        assert exc.value.code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["violation_count"] == 1
        (violation,) = payload["violations"]
        assert set(violation) == {"code", "path", "line", "col", "message", "hint"}
        assert violation["code"] == "REPRO101"
        assert violation["line"] == 2

    def test_update_baseline_then_clean(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        baseline = tmp_path / "bl.json"
        main(["check", str(tmp_path), "--baseline", str(baseline),
              "--update-baseline"])
        assert "1 finding(s) recorded" in capsys.readouterr().out
        payload = run_json(
            capsys, ["check", str(tmp_path), "--json", "--baseline", str(baseline)]
        )
        assert payload["ok"] is True
        assert payload["baseline_suppressed"] == 1

    def test_sarif_flag_writes_log(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        out = tmp_path / "log.sarif"
        main(["check", str(tmp_path), "--sarif", str(out),
              "--baseline", str(tmp_path / "bl.json")])
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-checkers"


class TestObsReportSchema:
    @pytest.fixture(scope="class")
    def obs_campaign(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs-campaign")
        export = path / "obs.jsonl"
        main(["campaign", "run", "--dir", str(path), "--obs-out", str(export)]
             + CAMPAIGN_ARGS)
        return path, export

    def assert_report_schema(self, payload):
        assert set(payload) == {
            "kind", "version", "snapshots", "counters", "gauges",
            "histograms", "spans", "profile",
        }
        assert payload["kind"] == "obs_report"
        assert payload["version"] == SNAPSHOT_VERSION
        assert set(payload["spans"]) == {"dropped", "aggregates"}
        for agg in payload["spans"]["aggregates"].values():
            assert set(agg) == {"count", "total_s", "max_s", "mean_s"}
        for hist in payload["histograms"].values():
            assert set(hist) == {"bounds", "counts", "total", "sum", "min", "max"}
            assert len(hist["counts"]) == len(hist["bounds"]) + 1

    def test_from_jsonl_export(self, capsys, obs_campaign):
        _, export = obs_campaign
        capsys.readouterr()
        payload = run_json(capsys, ["obs", "report", "--in", str(export), "--json"])
        self.assert_report_schema(payload)
        # the run must actually have recorded decoder activity
        assert payload["counters"]["campaign.chunks_ok"] == 2
        assert payload["counters"]["rs.decode.words"] > 0
        assert "campaign.chunk" in payload["spans"]["aggregates"]

    def test_from_campaign_directory(self, capsys, obs_campaign):
        path, _ = obs_campaign
        capsys.readouterr()
        payload = run_json(capsys, ["obs", "report", "--in", str(path), "--json"])
        self.assert_report_schema(payload)
        # manifest-side view carries the per-chunk spans and merged metrics
        assert payload["spans"]["aggregates"]["campaign.chunk"]["count"] == 2
        assert payload["counters"]["reliability.chunks"] == 2

    def test_missing_input_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "report", "--in", str(tmp_path / "nope.jsonl")])
