"""Golden-schema regression tests for the CLI's machine-readable outputs.

``--json`` payloads are a contract: downstream tooling (CI dashboards,
result scrapers) keys off exact field names.  These tests pin the key sets
and value types of every JSON surface - ``report --json``,
``campaign status --json``, ``backends --json``, ``check --json``, and
``obs report --json`` - so a rename or a dropped field fails loudly here
instead of silently breaking a consumer.

Golden key sets are asserted with ``==`` (not ``<=``): adding a field is
also a schema change and should be a conscious one (update the golden set
and bump ``SNAPSHOT_VERSION`` where the obs payloads are involved).
"""

import json

import pytest

from repro.cli import main
from repro.obs.metrics import SNAPSHOT_VERSION

CAMPAIGN_ARGS = ["--scheme", "pair", "--trials", "16", "--chunk-trials", "8",
                 "--seed", "2", "--backoff", "0.01"]


def run_json(capsys, argv):
    main(argv)
    out = capsys.readouterr().out
    payload = json.loads(out)
    # --json output must be exactly one parseable document, nothing else
    assert out == json.dumps(payload, sort_keys=True) + "\n"
    return payload


class TestReportManifestSchema:
    def test_golden_keys(self, capsys):
        payload = run_json(capsys, ["report", "--json"])
        assert set(payload) == {
            "kind", "settings", "samples", "burst_trials", "trace_requests",
            "schemes", "sections",
        }
        assert payload["kind"] == "report_manifest"
        assert payload["settings"] == "quick"
        assert payload["schemes"] == ["no-ecc", "iecc-sec", "xed", "duo", "pair"]
        assert payload["sections"] == [
            "configurations", "reliability", "performance", "bursts",
            "overheads", "headroom",
        ]
        for field in ("samples", "burst_trials", "trace_requests"):
            assert isinstance(payload[field], int) and payload[field] > 0

    def test_full_flag_changes_settings_only(self, capsys):
        quick = run_json(capsys, ["report", "--json"])
        full = run_json(capsys, ["report", "--json", "--full"])
        assert full["settings"] == "full"
        assert set(full) == set(quick)
        assert full["samples"] > quick["samples"]


class TestCampaignStatusSchema:
    @pytest.fixture(scope="class")
    def campaign_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("campaign")
        main(["campaign", "run", "--dir", str(path)] + CAMPAIGN_ARGS)
        return path

    def test_golden_keys(self, capsys, campaign_dir):
        capsys.readouterr()
        payload = run_json(
            capsys, ["campaign", "status", "--dir", str(campaign_dir), "--json"]
        )
        assert set(payload) == {
            "path", "fingerprint", "scheme", "kind", "total_chunks",
            "chunks_done", "quarantined", "trials_done", "complete", "tally",
        }
        assert set(payload["tally"]) == {
            "trials", "ok", "ce", "due", "sdc", "sdc_rate", "due_rate",
        }
        assert payload["scheme"] == "pair"
        assert payload["kind"] == "iid"
        assert payload["complete"] is True
        assert payload["chunks_done"] == payload["total_chunks"] == 2
        assert payload["trials_done"] == payload["tally"]["trials"] == 16
        assert payload["quarantined"] == []
        assert isinstance(payload["fingerprint"], str) and payload["fingerprint"]


class TestBackendsSchema:
    @pytest.fixture(autouse=True)
    def _default_selection(self, monkeypatch):
        from repro.galois import backends as reg

        monkeypatch.delenv(reg.ENV_VAR, raising=False)
        reg.reset_selection()
        yield
        reg.reset_selection()

    def test_golden_keys(self, capsys):
        payload = run_json(capsys, ["backends", "--json"])
        assert set(payload) == {
            "kind", "default", "env_var", "env_value", "active", "backends",
        }
        assert payload["kind"] == "gf_backends"
        assert payload["default"] == "numpy"
        assert payload["env_var"] == "REPRO_GF_BACKEND"
        assert payload["env_value"] is None
        assert payload["active"] == "numpy"
        names = [row["name"] for row in payload["backends"]]
        assert names[:2] == ["numpy", "bitsliced"]  # available tiers first
        assert "numba" in names
        for row in payload["backends"]:
            assert set(row) == {"name", "available", "reason", "active"}
            assert isinstance(row["available"], bool)
            assert row["reason"] is None or isinstance(row["reason"], str)
            assert (row["reason"] is None) == row["available"]
            assert row["active"] == (row["name"] == payload["active"])

    def test_env_var_reflected(self, capsys, monkeypatch):
        from repro.galois import backends as reg

        monkeypatch.setenv(reg.ENV_VAR, "bitsliced")
        reg.reset_selection()
        payload = run_json(capsys, ["backends", "--json"])
        assert payload["env_value"] == "bitsliced"
        assert payload["active"] == "bitsliced"

    def test_human_output_lists_every_backend(self, capsys):
        main(["backends"])
        out = capsys.readouterr().out
        assert "active: numpy" in out
        for name in ("numpy", "bitsliced", "numba"):
            assert name in out


class TestCheckSchema:
    def test_golden_keys_clean(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        payload = run_json(
            capsys,
            ["check", str(tmp_path), "--json",
             "--baseline", str(tmp_path / "bl.json")],
        )
        assert set(payload) == {
            "ok", "files_checked", "violation_count", "baseline_suppressed",
            "violations",
        }
        assert payload["ok"] is True
        assert payload["files_checked"] == 1
        assert payload["violation_count"] == 0
        assert payload["baseline_suppressed"] == 0
        assert payload["violations"] == []

    def test_golden_keys_dirty_and_exit_code(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        with pytest.raises(SystemExit) as exc:
            main(["check", str(tmp_path), "--json",
                  "--baseline", str(tmp_path / "bl.json")])
        assert exc.value.code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["violation_count"] == 1
        (violation,) = payload["violations"]
        assert set(violation) == {"code", "path", "line", "col", "message", "hint"}
        assert violation["code"] == "REPRO101"
        assert violation["line"] == 2

    def test_update_baseline_then_clean(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        baseline = tmp_path / "bl.json"
        main(["check", str(tmp_path), "--baseline", str(baseline),
              "--update-baseline"])
        assert "1 finding(s) recorded" in capsys.readouterr().out
        payload = run_json(
            capsys, ["check", str(tmp_path), "--json", "--baseline", str(baseline)]
        )
        assert payload["ok"] is True
        assert payload["baseline_suppressed"] == 1

    def test_sarif_flag_writes_log(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        out = tmp_path / "log.sarif"
        main(["check", str(tmp_path), "--sarif", str(out),
              "--baseline", str(tmp_path / "bl.json")])
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-checkers"


class TestObsReportSchema:
    @pytest.fixture(scope="class")
    def obs_campaign(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs-campaign")
        export = path / "obs.jsonl"
        main(["campaign", "run", "--dir", str(path), "--obs-out", str(export)]
             + CAMPAIGN_ARGS)
        return path, export

    def assert_report_schema(self, payload):
        assert set(payload) == {
            "kind", "version", "snapshots", "counters", "gauges",
            "histograms", "agents", "spans", "profile",
        }
        assert payload["kind"] == "obs_report"
        assert payload["version"] == SNAPSHOT_VERSION
        assert set(payload["spans"]) == {"dropped", "aggregates"}
        for agg in payload["spans"]["aggregates"].values():
            assert set(agg) == {"count", "total_s", "max_s", "mean_s"}
        for hist in payload["histograms"].values():
            assert set(hist) == {"bounds", "counts", "total", "sum", "min", "max"}
            assert len(hist["counts"]) == len(hist["bounds"]) + 1
        for section in payload["agents"].values():
            assert set(section) == {"snapshots", "counters", "gauges"}

    def test_from_jsonl_export(self, capsys, obs_campaign):
        _, export = obs_campaign
        capsys.readouterr()
        payload = run_json(capsys, ["obs", "report", "--in", str(export), "--json"])
        self.assert_report_schema(payload)
        # the run must actually have recorded decoder activity
        assert payload["counters"]["campaign.chunks_ok"] == 2
        assert payload["counters"]["rs.decode.words"] > 0
        assert "campaign.chunk" in payload["spans"]["aggregates"]

    def test_from_campaign_directory(self, capsys, obs_campaign):
        path, _ = obs_campaign
        capsys.readouterr()
        payload = run_json(capsys, ["obs", "report", "--in", str(path), "--json"])
        self.assert_report_schema(payload)
        # manifest-side view carries the per-chunk spans and merged metrics
        assert payload["spans"]["aggregates"]["campaign.chunk"]["count"] == 2
        assert payload["counters"]["reliability.chunks"] == 2

    def test_missing_input_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "report", "--in", str(tmp_path / "nope.jsonl")])


WATCH_KEYS = {
    "kind", "version", "state", "chunks_done", "total_chunks", "backlog",
    "quarantined", "fleet_rate", "eta_s", "lease_churn", "telemetry_frames",
    "agents", "counters", "gauges",
}


class TestWatchPayloadSchema:
    """``obs top --json`` and ``fleet status --watch --json`` emit the
    fleet watch payload; pin its key set from every CLI surface."""

    @pytest.fixture()
    def watch_dir(self, tmp_path):
        from repro.campaign.fleet import EventLog, FleetTelemetry
        from repro.obs import DeltaEncoder, Registry

        registry = Registry()
        registry.counter("reliability.trials").add(64)
        registry.gauge("rareevent.ess").set(41.5)
        encoder = DeltaEncoder("w0", registry=registry)
        telemetry = FleetTelemetry()
        telemetry.ingest("w0", encoder.delta("chunk-0"), now=1.0)
        telemetry.chunk_done("w0", duration_s=0.5, now=1.5)
        telemetry.chunk_done("w0", duration_s=0.5, now=2.0)
        payload = telemetry.watch_snapshot(
            state="complete", chunks_done=2, total_chunks=2, quarantined=0,
            leases={"active": [], "granted": 2, "expired": 0, "stolen": 0},
            now=2.5,
        )
        sidecar = {"state": "complete", "telemetry": payload}
        (tmp_path / "fleet.json").write_text(json.dumps(sidecar))
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("watch", payload=payload)
        log.close()
        return tmp_path

    def assert_watch_schema(self, payload):
        assert set(payload) == WATCH_KEYS
        assert payload["kind"] == "fleet_watch"
        assert payload["version"] == SNAPSHOT_VERSION
        assert set(payload["lease_churn"]) == {
            "active", "granted", "expired", "stolen",
        }
        for info in payload["agents"].values():
            assert set(info) == {
                "chunk_rate", "straggler_score", "chunks_done",
                "last_seen_age_s", "stream",
            }
            assert set(info["stream"]) == {
                "frames", "duplicates", "gaps", "last_seq",
            }

    def test_obs_top_json_from_dir(self, capsys, watch_dir):
        payload = run_json(
            capsys, ["obs", "top", "--dir", str(watch_dir), "--json"]
        )
        self.assert_watch_schema(payload)
        assert payload["counters"]["reliability.trials"] == 64
        assert payload["gauges"]["rareevent.ess"] == 41.5
        assert payload["agents"]["w0"]["chunks_done"] == 2

    def test_obs_top_json_from_events(self, capsys, watch_dir):
        payload = run_json(
            capsys,
            ["obs", "top", "--in", str(watch_dir / "events.jsonl"), "--json"],
        )
        self.assert_watch_schema(payload)

    def test_fleet_status_watch_json(self, capsys, watch_dir):
        payload = run_json(
            capsys,
            ["fleet", "status", "--dir", str(watch_dir), "--watch", "--json"],
        )
        self.assert_watch_schema(payload)

    def test_obs_top_renders_panels(self, capsys, watch_dir):
        main(["obs", "top", "--dir", str(watch_dir), "--once", "--no-color"])
        out = capsys.readouterr().out
        assert "repro fleet telemetry" in out
        assert "w0" in out
        assert "ESS" in out
        assert "\x1b[" not in out  # --no-color really is plain

    def test_missing_telemetry_exits_nonzero(self, tmp_path):
        (tmp_path / "fleet.json").write_text(json.dumps({"state": "serving"}))
        with pytest.raises(SystemExit) as exc:
            main(["obs", "top", "--dir", str(tmp_path), "--json"])
        assert exc.value.code == 1

    def test_exactly_one_source_required(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "top", "--json"])
        with pytest.raises(SystemExit):
            main(["obs", "top", "--dir", str(tmp_path), "--connect",
                  "localhost:9", "--json"])
