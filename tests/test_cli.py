"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_default_lineup(self, capsys):
        main(["info"])
        out = capsys.readouterr().out
        for name in ("no-ecc", "iecc-sec", "xed", "duo", "pair"):
            assert name in out

    def test_scheme_subset(self, capsys):
        main(["info", "--schemes", "pair", "xed"])
        out = capsys.readouterr().out
        assert "pair" in out and "xed" in out
        assert "duo" not in out

    def test_unknown_scheme_exits(self):
        with pytest.raises(SystemExit):
            main(["info", "--schemes", "nope"])


class TestReliability:
    def test_sweep_outputs_table(self, capsys):
        main(["reliability", "--bers", "1e-4", "--samples", "150",
              "--schemes", "no-ecc", "iecc-sec"])
        out = capsys.readouterr().out
        assert "failure probability" in out
        assert "1e-04" in out


class TestPerf:
    def test_single_workload(self, capsys):
        main(["perf", "--workloads", "balanced", "--schemes", "pair", "xed"])
        out = capsys.readouterr().out
        assert "balanced" in out
        assert "throughput" in out

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["perf", "--workloads", "nope"])

    def test_geomean_printed_for_multiple(self, capsys):
        main(["perf", "--workloads", "balanced", "random-read",
              "--schemes", "pair"])
        out = capsys.readouterr().out
        assert "geomean" in out


class TestBurst:
    def test_burst_coverage(self, capsys):
        main(["burst", "--lengths", "4", "12", "--trials", "4",
              "--schemes", "pair", "duo"])
        out = capsys.readouterr().out
        assert "surviving" in out
        lines = [l for l in out.splitlines() if l.startswith(("4 ", "12"))]
        assert len(lines) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestEnergy:
    def test_energy_table(self, capsys):
        main(["energy", "--schemes", "pair", "duo"])
        out = capsys.readouterr().out
        assert "read_nj" in out
        assert "pair" in out and "duo" in out


class TestHeadroom:
    def test_headroom_table(self, capsys):
        main(["headroom", "--targets", "1e-12", "--samples", "100",
              "--schemes", "iecc-sec", "pair"])
        out = capsys.readouterr().out
        assert "tolerable" in out
        assert "1e-12" in out

    def test_no_ecc_excluded(self, capsys):
        main(["headroom", "--targets", "1e-12", "--samples", "80",
              "--schemes", "no-ecc", "iecc-sec"])
        out = capsys.readouterr().out
        lines = out.splitlines()
        header = next(l for l in lines if "failure_target" in l)
        assert "no-ecc" not in header


class TestCampaign:
    RUN = ["campaign", "run", "--scheme", "pair", "--trials", "16",
           "--chunk-trials", "8", "--seed", "2", "--backoff", "0.01"]

    def test_run_completes_and_reports(self, capsys, tmp_path):
        main(self.RUN + ["--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "chunks: 2/2 done" in out
        assert "trials: 16" in out

    def test_status_after_run(self, capsys, tmp_path):
        main(self.RUN + ["--dir", str(tmp_path)])
        capsys.readouterr()
        main(["campaign", "status", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "complete       True" in out
        assert "fingerprint" in out

    def test_chaos_abort_exits_3_then_resume_finishes(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(self.RUN + ["--dir", str(tmp_path), "--chaos", "abort:1"])
        assert excinfo.value.code == 3
        capsys.readouterr()
        main(["campaign", "resume", "--dir", str(tmp_path), "--backoff", "0.01"])
        out = capsys.readouterr().out
        assert "chunks: 2/2 done" in out

    def test_resume_without_manifest_errors(self, tmp_path):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            main(["campaign", "resume", "--dir", str(tmp_path / "nope")])

    def test_incomplete_campaign_exits_nonzero(self, capsys, tmp_path):
        # a persistently crashing chunk leaves the campaign incomplete
        with pytest.raises(SystemExit) as excinfo:
            main(self.RUN + ["--dir", str(tmp_path), "--retries", "0",
                             "--chaos", "crash:0"])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "quarantined" in out


class TestFleet:
    CONFIG = ["--scheme", "pair", "--trials", "16", "--chunk-trials", "8",
              "--seed", "2"]

    def serve_degraded(self, tmp_path, *extra):
        # zero workers + --degrade-after: the scheduler falls back to the
        # in-process supervisor, which keeps these tests single-process
        main(["fleet", "serve", "--dir", str(tmp_path / "c"), *self.CONFIG,
              "--degrade-after", "0.1", "--backoff", "0.01", *extra])

    def test_serve_degraded_completes(self, capsys, tmp_path):
        self.serve_degraded(tmp_path)
        out = capsys.readouterr().out
        assert "chunks: 2/2 done" in out
        assert "trials: 16" in out

    def test_status_reports_scheduler_state(self, capsys, tmp_path):
        self.serve_degraded(tmp_path)
        capsys.readouterr()
        main(["fleet", "status", "--dir", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert "complete       True" in out
        assert "scheduler      complete" in out
        assert "0 active" in out
        assert "agents_seen    -" in out

    def test_status_json_round_trips(self, capsys, tmp_path):
        import json

        self.serve_degraded(tmp_path)
        capsys.readouterr()
        main(["fleet", "status", "--dir", str(tmp_path / "c"), "--json"])
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] is True
        assert status["fleet"]["state"] == "complete"
        assert status["fleet"]["leases"]["granted"] == 0

    def test_submit_miss_runs_then_hit_is_instant(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        main(["fleet", "submit", "--dir", str(tmp_path / "a"),
              "--cache-dir", cache, *self.CONFIG])
        first = capsys.readouterr().out
        assert "cache miss" in first and "chunks: 2/2 done" in first
        # identical config, different directory: answered from the cache
        main(["fleet", "submit", "--dir", str(tmp_path / "b"),
              "--cache-dir", cache, *self.CONFIG])
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert not (tmp_path / "b").exists()  # no campaign was run

    def test_serve_then_submit_shares_the_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self.serve_degraded(tmp_path, "--cache-dir", cache)
        capsys.readouterr()
        main(["fleet", "submit", "--dir", str(tmp_path / "other"),
              "--cache-dir", cache, *self.CONFIG])
        assert "cache hit" in capsys.readouterr().out

    def test_worker_requires_an_endpoint(self):
        with pytest.raises(SystemExit, match="--dir or --connect"):
            main(["fleet", "worker", "--name", "w0"])

    def test_worker_rejects_malformed_connect(self):
        with pytest.raises(SystemExit, match="want HOST:PORT"):
            main(["fleet", "worker", "--name", "w0", "--connect", "nonsense"])

    def test_worker_against_no_scheduler_exits_1(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "worker", "--name", "w0",
                  "--connect", "127.0.0.1:1", "--connect-timeout", "0.2"])
        assert excinfo.value.code == 1
        assert "could not reach" in capsys.readouterr().out
