"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_default_lineup(self, capsys):
        main(["info"])
        out = capsys.readouterr().out
        for name in ("no-ecc", "iecc-sec", "xed", "duo", "pair"):
            assert name in out

    def test_scheme_subset(self, capsys):
        main(["info", "--schemes", "pair", "xed"])
        out = capsys.readouterr().out
        assert "pair" in out and "xed" in out
        assert "duo" not in out

    def test_unknown_scheme_exits(self):
        with pytest.raises(SystemExit):
            main(["info", "--schemes", "nope"])


class TestReliability:
    def test_sweep_outputs_table(self, capsys):
        main(["reliability", "--bers", "1e-4", "--samples", "150",
              "--schemes", "no-ecc", "iecc-sec"])
        out = capsys.readouterr().out
        assert "failure probability" in out
        assert "1e-04" in out


class TestPerf:
    def test_single_workload(self, capsys):
        main(["perf", "--workloads", "balanced", "--schemes", "pair", "xed"])
        out = capsys.readouterr().out
        assert "balanced" in out
        assert "throughput" in out

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["perf", "--workloads", "nope"])

    def test_geomean_printed_for_multiple(self, capsys):
        main(["perf", "--workloads", "balanced", "random-read",
              "--schemes", "pair"])
        out = capsys.readouterr().out
        assert "geomean" in out


class TestBurst:
    def test_burst_coverage(self, capsys):
        main(["burst", "--lengths", "4", "12", "--trials", "4",
              "--schemes", "pair", "duo"])
        out = capsys.readouterr().out
        assert "surviving" in out
        lines = [l for l in out.splitlines() if l.startswith(("4 ", "12"))]
        assert len(lines) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestEnergy:
    def test_energy_table(self, capsys):
        main(["energy", "--schemes", "pair", "duo"])
        out = capsys.readouterr().out
        assert "read_nj" in out
        assert "pair" in out and "duo" in out


class TestHeadroom:
    def test_headroom_table(self, capsys):
        main(["headroom", "--targets", "1e-12", "--samples", "100",
              "--schemes", "iecc-sec", "pair"])
        out = capsys.readouterr().out
        assert "tolerable" in out
        assert "1e-12" in out

    def test_no_ecc_excluded(self, capsys):
        main(["headroom", "--targets", "1e-12", "--samples", "80",
              "--schemes", "no-ecc", "iecc-sec"])
        out = capsys.readouterr().out
        lines = out.splitlines()
        header = next(l for l in lines if "failure_target" in l)
        assert "no-ecc" not in header
