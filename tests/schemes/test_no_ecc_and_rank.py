"""Tests for the NoECC and rank-level SEC-DED baselines."""

import numpy as np
import pytest

from repro.dram import RANK_X8_4CHIP
from repro.faults import TransferBurst
from repro.schemes import NoEcc, RankSecDed

from .conftest import flip_storage_bits, random_line


class TestNoEcc:
    def test_roundtrip(self, rng):
        scheme = NoEcc()
        chips = scheme.make_devices()
        data = random_line(rng, scheme)
        scheme.write_line(chips, 0, 0, 0, data)
        result = scheme.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_any_fault_is_silent_corruption(self, rng):
        scheme = NoEcc()
        chips = scheme.make_devices()
        data = random_line(rng, scheme)
        scheme.write_line(chips, 0, 0, 0, data)
        flip_storage_bits(chips[0], 0, 0, [(0, 0)])
        result = scheme.read_line(chips, 0, 0, 0)
        assert result.believed_good  # it cannot know
        assert not np.array_equal(result.data, data)

    def test_burst_passes_through(self, rng):
        scheme = NoEcc()
        chips = scheme.make_devices()
        data = random_line(rng, scheme)
        scheme.write_line(chips, 0, 0, 0, data)
        burst = TransferBurst(pin=0, beat_start=0, length=4)
        result = scheme.read_line(chips, 0, 0, 0, bursts={0: burst})
        assert not np.array_equal(result.data, data)

    def test_zero_overheads(self):
        scheme = NoEcc()
        assert scheme.storage_overhead == 0.0
        assert scheme.timing_overlay.read_latency_cycles == 0


class TestRankSecDed:
    def test_requires_ecc_chip(self):
        with pytest.raises(ValueError):
            RankSecDed(rank=RANK_X8_4CHIP)

    def test_roundtrip(self, rng):
        scheme = RankSecDed()
        chips = scheme.make_devices()
        data = random_line(rng, scheme)
        scheme.write_line(chips, 0, 0, 0, data)
        result = scheme.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_corrects_one_bit_per_slice(self, rng):
        scheme = RankSecDed()
        chips = scheme.make_devices()
        data = random_line(rng, scheme)
        scheme.write_line(chips, 0, 0, 0, data)
        # one bit in each chip: slices are 64 consecutive beat-major bits,
        # so chip c beat b pin p is global bit c*128 + b*8 + p
        for chip_idx in range(4):
            flip_storage_bits(chips[chip_idx], 0, 0, [(0, 0)])  # distinct slices
        result = scheme.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)
        assert result.corrections == 4

    def test_double_in_one_slice_is_due(self, rng):
        scheme = RankSecDed()
        chips = scheme.make_devices()
        data = random_line(rng, scheme)
        scheme.write_line(chips, 0, 0, 0, data)
        # two bits in the same 64-bit slice: pins 0 and 1 of beat 0, chip 0
        flip_storage_bits(chips[0], 0, 0, [(0, 0), (1, 0)])
        result = scheme.read_line(chips, 0, 0, 0)
        assert not result.believed_good

    def test_check_bit_fault_corrected(self, rng):
        scheme = RankSecDed()
        chips = scheme.make_devices()
        data = random_line(rng, scheme)
        scheme.write_line(chips, 0, 0, 0, data)
        flip_storage_bits(chips[4], 0, 0, [(3, 0)])  # ECC chip bit
        result = scheme.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)
