"""Tests for the PAIR scheme - the paper's contribution."""

import numpy as np
import pytest

from repro.dram import DDR5_X4, DDR5_X8, DDR5_X16
from repro.faults import TransferBurst
from repro.schemes import PairScheme

from .conftest import flip_storage_bits, random_line


@pytest.fixture
def pair():
    return PairScheme()


class TestConfiguration:
    def test_default_code(self, pair):
        assert pair.code.n == 256
        assert pair.code.k == 240
        assert pair.t == 8
        assert pair.storage_overhead == pytest.approx(16 / 240)

    def test_no_extra_chips(self, pair):
        assert pair.rank.ecc_chips == 0
        assert pair.chip_overhead == 0.0

    def test_timing_overlay_is_lean(self, pair):
        ov = pair.timing_overlay
        assert ov.burst_stretch == 1.0
        assert ov.write_rmw_cycles == 0
        assert not ov.masked_write_extra_read

    def test_orientations(self):
        beat = PairScheme(orientation="beat")
        assert beat.name == "pair-beat"
        with pytest.raises(ValueError):
            PairScheme(orientation="diagonal")

    def test_description_row(self, pair):
        row = pair.description()
        assert row["scheme"] == "pair"
        assert row["storage_overhead"] == pytest.approx(16 / 240)


class TestForDevice:
    @pytest.mark.parametrize(
        "device,chips", [(DDR5_X4, 8), (DDR5_X8, 4), (DDR5_X16, 2)]
    )
    def test_rank_adapts_to_pin_count(self, device, chips):
        scheme = PairScheme.for_device(device)
        assert scheme.rank.data_chips == chips
        assert scheme.rank.access_data_bits == 512

    @pytest.mark.parametrize("device", [DDR5_X4, DDR5_X8, DDR5_X16])
    def test_roundtrip_every_width(self, device, rng):
        scheme = PairScheme.for_device(device)
        chips = scheme.make_devices()
        data = random_line(rng, scheme)
        scheme.write_line(chips, 0, 3, 2, data)
        result = scheme.read_line(chips, 0, 3, 2)
        assert result.believed_good
        assert np.array_equal(result.data, data)


class TestWritePath:
    def test_roundtrip(self, pair, rng):
        chips = pair.make_devices()
        data = random_line(rng, pair)
        pair.write_line(chips, 0, 0, 0, data)
        result = pair.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert result.corrections == 0
        assert np.array_equal(result.data, data)

    def test_every_column_in_a_segment(self, pair, rng):
        chips = pair.make_devices()
        written = {}
        for col in (0, 1, 60, 119, 120, 479):
            data = random_line(rng, pair)
            pair.write_line(chips, 0, 0, col, data)
            written[col] = data
        for col, data in written.items():
            result = pair.read_line(chips, 0, 0, col)
            assert result.believed_good
            assert np.array_equal(result.data, data), col

    def test_rewrite_updates_parity_incrementally(self, pair, rng):
        """Overwrites must keep every touched codeword consistent."""
        chips = pair.make_devices()
        for _ in range(5):
            data = random_line(rng, pair)
            pair.write_line(chips, 0, 7, 42, data)
        result = pair.read_line(chips, 0, 7, 42)
        assert result.believed_good
        assert np.array_equal(result.data, data)
        # all codewords of the touched segment must be valid codewords
        for chip in chips:
            row = chip.row_view(0, 7)
            for cw in pair.layout.codewords_of_access(42):
                symbols = pair.layout.gather(row, cw)
                assert not np.any(pair.code.inner.syndromes(symbols[:-1]))
                assert symbols[-1] == np.bitwise_xor.reduce(symbols[:-1])

    def test_incremental_matches_full_encode(self, pair, rng):
        """The impulse-table update equals a from-scratch encode."""
        chips = pair.make_devices()
        data = random_line(rng, pair)
        pair.write_line(chips, 0, 1, 5, data)
        row = chips[0].row_view(0, 1)
        cw = pair.layout.codewords_of_access(5)[0]
        symbols = pair.layout.gather(row, cw)
        expect = pair.code.encode(symbols[: pair.layout.k])
        assert np.array_equal(symbols, expect)

    def test_write_does_not_disturb_other_segments(self, pair, rng):
        chips = pair.make_devices()
        d1 = random_line(rng, pair)
        d2 = random_line(rng, pair)
        pair.write_line(chips, 0, 0, 0, d1)  # segment 0
        pair.write_line(chips, 0, 0, 200, d2)  # segment 1
        assert np.array_equal(pair.read_line(chips, 0, 0, 0).data, d1)
        assert np.array_equal(pair.read_line(chips, 0, 0, 200).data, d2)


class TestCorrection:
    def test_corrects_t_scattered_cells_per_pin(self, pair, rng):
        chips = pair.make_devices()
        data = random_line(rng, pair)
        pair.write_line(chips, 0, 0, 0, data)
        # 8 weak cells spread along pin 0's first segment (codeword 0)
        offsets = rng.choice(1920, 8, replace=False)
        flip_storage_bits(chips[0], 0, 0, [(0, int(o)) for o in offsets])
        result = pair.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_corrects_cells_on_every_pin_simultaneously(self, pair, rng):
        """Each pin codeword corrects independently: 8 x t cells per chip."""
        chips = pair.make_devices()
        data = random_line(rng, pair)
        pair.write_line(chips, 0, 0, 0, data)
        for pin in range(8):
            base = pin * 0  # same segment, different pins
            offsets = rng.choice(1920, 8, replace=False)
            flip_storage_bits(chips[0], 0, 0, [(pin, int(o)) for o in offsets])
        result = pair.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)
        assert result.corrections >= 8  # at least the affected symbols

    def test_detects_beyond_capability(self, pair, rng):
        chips = pair.make_devices()
        data = random_line(rng, pair)
        pair.write_line(chips, 0, 0, 0, data)
        # 9 errors in 9 distinct symbols of pin 0's codeword
        offsets = [i * 8 for i in range(9)]
        flip_storage_bits(chips[0], 0, 0, [(0, o) for o in offsets])
        result = pair.read_line(chips, 0, 0, 0)
        assert not result.believed_good

    def test_parity_region_faults_corrected(self, pair, rng):
        chips = pair.make_devices()
        data = random_line(rng, pair)
        pair.write_line(chips, 0, 0, 0, data)
        device = pair.rank.device
        spare_base = device.data_bits_per_pin_per_row
        flip_storage_bits(chips[0], 0, 0, [(0, spare_base + 3), (0, spare_base + 40)])
        result = pair.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_corrections_scattered_back_to_output(self, pair, rng):
        """A corrected symbol inside the accessed window must be fixed in data."""
        chips = pair.make_devices()
        data = random_line(rng, pair)
        col = 3
        pair.write_line(chips, 0, 0, col, data)
        # flip a bit INSIDE the accessed window of pin 2
        flip_storage_bits(chips[0], 0, 0, [(2, col * 16 + 5)])
        result = pair.read_line(chips, 0, 0, col)
        assert result.believed_good
        assert np.array_equal(result.data, data)
        assert result.corrections == 1


class TestBurstErrors:
    def test_corrects_long_transfer_burst(self, pair, rng):
        """A 9-beat burst on one pin touches <= 2 symbols: corrected."""
        chips = pair.make_devices()
        data = random_line(rng, pair)
        pair.write_line(chips, 0, 0, 0, data)
        burst = TransferBurst(pin=4, beat_start=3, length=9)
        result = pair.read_line(chips, 0, 0, 0, bursts={0: burst})
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_corrects_full_burst_on_pin(self, pair, rng):
        chips = pair.make_devices()
        data = random_line(rng, pair)
        pair.write_line(chips, 0, 0, 0, data)
        burst = TransferBurst(pin=0, beat_start=0, length=16)  # 2 symbols
        result = pair.read_line(chips, 0, 0, 0, bursts={0: burst})
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_bursts_on_multiple_chips(self, pair, rng):
        chips = pair.make_devices()
        data = random_line(rng, pair)
        pair.write_line(chips, 0, 0, 0, data)
        bursts = {c: TransferBurst(pin=c % 8, beat_start=0, length=8) for c in range(4)}
        result = pair.read_line(chips, 0, 0, 0, bursts=bursts)
        assert result.believed_good
        assert np.array_equal(result.data, data)


class TestAlignmentAblation:
    def test_beat_orientation_roundtrip(self, rng):
        beat = PairScheme(orientation="beat")
        chips = beat.make_devices()
        data = random_line(rng, beat)
        beat.write_line(chips, 0, 0, 0, data)
        result = beat.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_burst_kills_beat_orientation_not_pin(self, rng):
        """The paper's core geometric argument, end to end.

        A 9+ beat burst on one pin is 1-2 symbols pin-aligned but 9+
        symbols beat-aligned (> t = 8): only PAIR survives.
        """
        burst = TransferBurst(pin=1, beat_start=0, length=12)
        outcomes = {}
        for orientation in ("pin", "beat"):
            scheme = PairScheme(orientation=orientation)
            chips = scheme.make_devices()
            data = random_line(np.random.default_rng(1), scheme)
            scheme.write_line(chips, 0, 0, 0, data)
            result = scheme.read_line(chips, 0, 0, 0, bursts={0: burst})
            correct = result.believed_good and np.array_equal(result.data, data)
            outcomes[orientation] = correct
        assert outcomes["pin"] is True
        assert outcomes["beat"] is False
