"""Tests for PAIR with defect profiling and erasure decoding."""

import numpy as np
import pytest

from repro.faults import FaultInstance, FaultOverlay, FaultRates, FaultType
from repro.schemes import DefectMap, PairErasureScheme, PairScheme, profile_chip

from .conftest import clean_rates, random_line


def column_fault(pin, offset, density=1.0, rows=65536):
    return FaultInstance(
        FaultType.COLUMN, bank=0, row_start=0, row_count=rows,
        pin=pin, bit_start=offset, bit_count=1, density=density,
    )


def mat_fault(pin, start, bits, rows=65536, density=1.0):
    return FaultInstance(
        FaultType.MAT, bank=0, row_start=0, row_count=rows,
        pin=pin, bit_start=start, bit_count=bits, density=density,
    )


def chips_with_faults(scheme, faults, seed=1):
    overlays = [None] * scheme.rank.chips
    overlays[0] = FaultOverlay(scheme.rank.device, clean_rates(), seed=seed, faults=faults)
    return scheme.make_devices(overlays)


class TestDefectMap:
    def test_mark_and_lookup(self):
        dmap = DefectMap()
        dmap.mark(0, 1, 3, 77)
        assert (3, 77) in dmap.defects(0, 1)
        assert dmap.defects(0, 2) == set()
        assert dmap.total == 1

    def test_idempotent_marking(self):
        dmap = DefectMap()
        dmap.mark(0, 0, 1, 5)
        dmap.mark(0, 0, 1, 5)
        assert dmap.total == 1


class TestProfiling:
    def test_finds_persistent_column(self):
        scheme = PairErasureScheme()
        chips = chips_with_faults(scheme, [column_fault(pin=2, offset=100)])
        marked = scheme.profile(chips, banks=(0,), sample_rows=16, seed=3)
        assert marked == 1
        assert (2, 100) in scheme.defect_map.defects(0, 0)

    def test_ignores_isolated_weak_cells(self):
        """Random weak cells differ per row: below the repeat threshold."""
        scheme = PairErasureScheme()
        rates = clean_rates(single_cell_ber=1e-4)
        overlays = [
            FaultOverlay(scheme.rank.device, rates, seed=c + 9, faults=[])
            for c in range(scheme.rank.chips)
        ]
        chips = scheme.make_devices(overlays)
        marked = scheme.profile(chips, banks=(0,), sample_rows=16, seed=4)
        assert marked == 0

    def test_partial_density_column_still_found(self):
        scheme = PairErasureScheme()
        chips = chips_with_faults(scheme, [column_fault(pin=0, offset=9, density=0.8)])
        marked = scheme.profile(chips, banks=(0,), sample_rows=32, seed=5)
        assert marked == 1

    def test_profile_chip_direct(self):
        scheme = PairScheme()
        chips = chips_with_faults(scheme, [column_fault(pin=1, offset=50)])
        dmap = DefectMap()
        found = profile_chip(chips[0], 0, dmap, banks=(0,), sample_rows=8)
        assert found == 1


class TestErasureDecoding:
    def test_mat_beyond_blind_t_corrected_with_hints(self):
        """12 defective symbols: blind PAIR flags, erasure PAIR corrects."""
        faults = [mat_fault(pin=0, start=0, bits=96)]  # 12 symbols of cw 0
        blind = PairScheme()
        chips_b = chips_with_faults(blind, faults)
        data = random_line(np.random.default_rng(0), blind)
        blind.write_line(chips_b, 0, 100, 0, data)
        assert not blind.read_line(chips_b, 0, 100, 0).believed_good

        hinted = PairErasureScheme()
        chips_h = chips_with_faults(hinted, faults)
        hinted.write_line(chips_h, 0, 100, 0, data)
        hinted.profile(chips_h, banks=(0,), sample_rows=16, seed=6)
        result = hinted.read_line(chips_h, 0, 100, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_erasures_plus_random_errors(self):
        """f erasures and v fresh errors decode while 2v + f fits."""
        faults = [mat_fault(pin=3, start=0, bits=64)]  # 8 symbols erased
        scheme = PairErasureScheme()
        chips = chips_with_faults(scheme, faults)
        rng = np.random.default_rng(1)
        data = random_line(rng, scheme)
        scheme.write_line(chips, 0, 7, 0, data)
        scheme.profile(chips, banks=(0,), sample_rows=16, seed=7)
        # add 3 fresh single-bit errors on the same pin codeword (2*3+8=14<=15)
        view = chips[0].row_view(0, 7)
        for off in (100, 300, 700):
            view[3, off] ^= 1
        result = scheme.read_line(chips, 0, 7, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_unprofiled_behaves_like_pair(self):
        scheme = PairErasureScheme()
        chips = scheme.make_devices()
        data = random_line(np.random.default_rng(2), scheme)
        scheme.write_line(chips, 0, 0, 0, data)
        result = scheme.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_too_many_defects_fall_back_to_blind(self):
        """Past max_erasures the hints are dropped, not mis-spent."""
        scheme = PairErasureScheme(max_erasures=4)
        for off in range(0, 8 * 8, 8):  # 8 defective symbols > cap
            scheme.defect_map.mark(0, 0, 0, off)
        assert scheme._erasures_for_codeword(0, 0, 0) == ()

    def test_erasure_positions_mapped_to_symbols(self):
        scheme = PairErasureScheme()
        scheme.defect_map.mark(0, 0, 5, 17)  # pin 5, bit 17 -> symbol 2
        cw = scheme.layout.codeword_id(5, 0)
        assert scheme._erasures_for_codeword(0, 0, cw) == (2,)
        # other pins' codewords unaffected
        assert scheme._erasures_for_codeword(0, 0, scheme.layout.codeword_id(4, 0)) == ()

    def test_cache_invalidated_by_profile(self):
        scheme = PairErasureScheme()
        chips = chips_with_faults(scheme, [column_fault(pin=2, offset=100)])
        cw = scheme.layout.codeword_id(2, 0)
        assert scheme._erasures_for_codeword(0, 0, cw) == ()
        scheme.profile(chips, banks=(0,), sample_rows=8, seed=8)
        assert scheme._erasures_for_codeword(0, 0, cw) == (12,)  # bit 100 -> sym 12
