"""Tests for the DUO baseline (controller-side long RS)."""

import numpy as np
import pytest

from repro.dram import RANK_X8_4CHIP
from repro.faults import TransferBurst
from repro.schemes import Duo

from .conftest import flip_storage_bits, random_line


@pytest.fixture
def duo():
    return Duo()


class TestConfiguration:
    def test_published_code_parameters(self, duo):
        assert duo.code.n == 76
        assert duo.code.k == 64
        assert duo.code.t == 6

    def test_requires_ecc_chip(self):
        with pytest.raises(ValueError):
            Duo(rank=RANK_X8_4CHIP)

    def test_overlay_has_burst_stretch_and_controller_rmw(self, duo):
        ov = duo.timing_overlay
        assert ov.burst_stretch == pytest.approx(17 / 16)
        assert ov.masked_write_extra_read
        assert ov.write_rmw_cycles == 0  # no in-DRAM RMW

    def test_storage_overhead_matches_iecc_budget(self, duo):
        assert duo.storage_overhead == pytest.approx(0.0625)


class TestDatapath:
    def test_roundtrip(self, duo, rng):
        chips = duo.make_devices()
        data = random_line(rng, duo)
        duo.write_line(chips, 0, 0, 0, data)
        result = duo.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_corrects_up_to_t_symbols(self, duo, rng):
        chips = duo.make_devices()
        data = random_line(rng, duo)
        duo.write_line(chips, 0, 0, 0, data)
        # 6 errors in 6 distinct beat-aligned symbols (symbol = one beat):
        # beats 0-3 on chips 0-3, plus beats 5 and 7 on chip 0
        for chip_idx in range(4):
            flip_storage_bits(chips[chip_idx], 0, 0, [(0, chip_idx)])
        flip_storage_bits(chips[0], 0, 0, [(3, 5), (6, 7)])
        result = duo.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)
        assert result.corrections == 6

    def test_detects_beyond_t(self, duo, rng):
        chips = duo.make_devices()
        data = random_line(rng, duo)
        duo.write_line(chips, 0, 0, 0, data)
        # 7 distinct symbols (one bit each, one per beat) - beyond t = 6
        for beat in range(7):
            flip_storage_bits(chips[0], 0, 0, [(0, beat)])
        result = duo.read_line(chips, 0, 0, 0)
        assert not result.believed_good

    def test_redundancy_storage_faults_corrected(self, duo, rng):
        chips = duo.make_devices()
        data = random_line(rng, duo)
        duo.write_line(chips, 0, 0, 0, data)
        spare = duo.rank.device.data_bits_per_pin_per_row
        flip_storage_bits(chips[0], 0, 0, [(0, spare)])  # chip-0 spare symbol
        flip_storage_bits(chips[4], 0, 0, [(0, 0)])  # ECC chip symbol
        result = duo.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_pin_burst_costs_many_symbols(self, duo, rng):
        """Beat-aligned symbols: a long per-pin burst overwhelms DUO."""
        chips = duo.make_devices()
        data = random_line(rng, duo)
        duo.write_line(chips, 0, 0, 0, data)
        burst = TransferBurst(pin=2, beat_start=0, length=12)  # 12 symbols hit
        result = duo.read_line(chips, 0, 0, 0, bursts={0: burst})
        assert not result.believed_good  # 12 > t = 6: detected

    def test_short_burst_still_corrected(self, duo, rng):
        chips = duo.make_devices()
        data = random_line(rng, duo)
        duo.write_line(chips, 0, 0, 0, data)
        burst = TransferBurst(pin=2, beat_start=0, length=5)  # 5 symbols
        result = duo.read_line(chips, 0, 0, 0, bursts={0: burst})
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_multiple_cols_independent(self, duo, rng):
        chips = duo.make_devices()
        d1 = random_line(rng, duo)
        d2 = random_line(rng, duo)
        duo.write_line(chips, 0, 0, 0, d1)
        duo.write_line(chips, 0, 0, 1, d2)
        assert np.array_equal(duo.read_line(chips, 0, 0, 0).data, d1)
        assert np.array_equal(duo.read_line(chips, 0, 0, 1).data, d2)
