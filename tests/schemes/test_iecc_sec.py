"""Tests for the conventional in-DRAM SEC baseline."""

import numpy as np
import pytest

from repro.schemes import ConventionalIecc

from .conftest import flip_storage_bits, random_line


@pytest.fixture
def iecc():
    return ConventionalIecc()


class TestConfiguration:
    def test_code_and_overhead(self, iecc):
        assert iecc.code.n == 136
        assert iecc.code.k == 128
        assert iecc.storage_overhead == pytest.approx(0.0625)

    def test_masked_write_rmw_declared(self, iecc):
        ov = iecc.timing_overlay
        assert ov.write_rmw_cycles > 0
        assert not ov.rmw_on_all_writes  # only masked writes pay


class TestDatapath:
    def test_roundtrip(self, iecc, rng):
        chips = iecc.make_devices()
        data = random_line(rng, iecc)
        iecc.write_line(chips, 0, 0, 9, data)
        result = iecc.read_line(chips, 0, 0, 9)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_corrects_single_cell_per_chip_word(self, iecc, rng):
        chips = iecc.make_devices()
        data = random_line(rng, iecc)
        iecc.write_line(chips, 0, 0, 0, data)
        for chip_idx in range(4):
            flip_storage_bits(chips[chip_idx], 0, 0, [(chip_idx * 2, 5)])
        result = iecc.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)
        assert result.corrections == 4

    def test_double_error_usually_silently_corrupts(self, iecc, rng):
        """The conventional-IECC failure mode PAIR targets: no DUE path."""
        sdc = 0
        trials = 30
        for trial in range(trials):
            local = np.random.default_rng(trial)
            chips = iecc.make_devices()
            data = random_line(local, iecc)
            iecc.write_line(chips, 0, 0, 0, data)
            offsets = local.choice(16, 2, replace=False)
            flip_storage_bits(chips[0], 0, 0, [(0, int(offsets[0])), (1, int(offsets[1]))])
            result = iecc.read_line(chips, 0, 0, 0)
            assert result.believed_good  # it never flags anything
            if not np.array_equal(result.data, data):
                sdc += 1
        assert sdc == trials  # two data errors can never come back right

    def test_parity_region_error_does_not_corrupt_data(self, iecc, rng):
        chips = iecc.make_devices()
        data = random_line(rng, iecc)
        iecc.write_line(chips, 0, 0, 3, data)
        spare = iecc.rank.device.data_bits_per_pin_per_row
        flip_storage_bits(chips[0], 0, 0, [(0, spare + 3)])
        result = iecc.read_line(chips, 0, 0, 3)
        assert result.believed_good
        assert np.array_equal(result.data, data)
