"""Tests for the scheme interface and the default line-up."""

import numpy as np
import pytest

from repro.schemes import LineReadResult, default_schemes


class TestDefaultSchemes:
    def test_lineup_matches_paper(self):
        names = [s.name for s in default_schemes()]
        assert names == ["no-ecc", "iecc-sec", "xed", "duo", "pair"]

    def test_descriptions_have_uniform_keys(self):
        rows = [s.description() for s in default_schemes()]
        keys = {tuple(sorted(r)) for r in rows}
        assert len(keys) == 1

    def test_all_lines_are_64_bytes(self):
        for scheme in default_schemes():
            chips, pins, bl = scheme.line_shape
            assert chips * pins * bl == 512

    def test_make_devices_counts(self):
        for scheme in default_schemes():
            assert len(scheme.make_devices()) == scheme.rank.chips

    def test_make_devices_overlay_count_checked(self):
        scheme = default_schemes()[0]
        with pytest.raises(ValueError):
            scheme.make_devices(overlays=[None])

    def test_write_line_validates_shape(self):
        for scheme in default_schemes():
            chips = scheme.make_devices()
            with pytest.raises(ValueError):
                scheme.write_line(chips, 0, 0, 0, np.zeros((1, 1, 1), dtype=np.uint8))


class TestLineReadResult:
    def test_detected_flag(self):
        good = LineReadResult(data=np.zeros(1), believed_good=True)
        bad = LineReadResult(data=np.zeros(1), believed_good=False)
        assert not good.detected_uncorrectable
        assert bad.detected_uncorrectable
