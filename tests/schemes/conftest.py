"""Shared helpers for scheme tests."""

import numpy as np
import pytest

from repro.faults import FaultRates


@pytest.fixture
def rng():
    return np.random.default_rng(0xEC0)


def random_line(rng, scheme):
    return rng.integers(0, 2, scheme.line_shape).astype(np.uint8)


def clean_rates(**overrides):
    base = dict(
        single_cell_ber=0.0, row_faults_per_device=0.0, column_faults_per_device=0.0,
        pin_faults_per_device=0.0, mat_faults_per_device=0.0,
        transfer_burst_per_access=0.0,
    )
    base.update(overrides)
    return FaultRates(**base)


def flip_storage_bits(chip, bank, row, positions):
    """Flip specific (pin, offset) bits directly in a chip's storage."""
    view = chip.row_view(bank, row)
    for pin, off in positions:
        view[pin, off] ^= 1
