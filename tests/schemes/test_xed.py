"""Tests for the XED baseline (detect-expose + rank XOR parity)."""

import numpy as np
import pytest

from repro.dram import RANK_X8_4CHIP
from repro.schemes import Xed

from .conftest import flip_storage_bits, random_line


@pytest.fixture
def xed():
    return Xed()


def force_detectable_word(code, rng):
    """Bit pair whose double error lands on an unused syndrome (detected)."""
    from repro.codes import DecodeStatus

    cw = code.encode(np.zeros(128, dtype=np.uint8))
    for a in range(136):
        for b in range(a + 1, 136):
            word = cw.copy()
            word[a] ^= 1
            word[b] ^= 1
            if code.decode(word).status is DecodeStatus.DETECTED:
                return a, b
    raise AssertionError("no detectable double found")


class TestConfiguration:
    def test_requires_parity_chip(self):
        with pytest.raises(ValueError):
            Xed(rank=RANK_X8_4CHIP)

    def test_rmw_on_all_writes(self, xed):
        assert xed.timing_overlay.rmw_on_all_writes

    def test_overhead(self, xed):
        assert xed.storage_overhead == pytest.approx(0.0625)
        assert xed.chip_overhead == pytest.approx(0.25)


class TestDatapath:
    def test_roundtrip(self, xed, rng):
        chips = xed.make_devices()
        data = random_line(rng, xed)
        xed.write_line(chips, 0, 0, 0, data)
        result = xed.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_parity_chip_content(self, xed, rng):
        chips = xed.make_devices()
        data = random_line(rng, xed)
        xed.write_line(chips, 0, 0, 0, data)
        words = [data[c].T.reshape(-1) for c in range(4)]
        expected_parity = np.bitwise_xor.reduce(np.stack(words), axis=0)
        parity_word = xed.layout.gather(chips[4].row_view(0, 0), 0)
        assert np.array_equal(parity_word[:128], expected_parity)

    def test_single_bit_corrected_on_die(self, xed, rng):
        chips = xed.make_devices()
        data = random_line(rng, xed)
        xed.write_line(chips, 0, 0, 0, data)
        flip_storage_bits(chips[2], 0, 0, [(3, 7)])
        result = xed.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_detected_word_reconstructed_from_parity(self, xed, rng):
        """The catch-word path: a detectable double error rebuilds cleanly."""
        a, b = force_detectable_word(xed.code, rng)
        chips = xed.make_devices()
        data = random_line(rng, xed)
        xed.write_line(chips, 0, 0, 0, data)
        # map codeword positions a, b into storage: data bits are beat-major
        positions = []
        for p in (a, b):
            if p < 128:
                positions.append((p % 8, (p // 8)))  # pin, beat offset in col 0
            else:
                positions.append((p - 128, xed.rank.device.data_bits_per_pin_per_row))
        flip_storage_bits(chips[1], 0, 0, positions)
        result = xed.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_two_flagged_chips_is_due(self, xed, rng):
        a, b = force_detectable_word(xed.code, rng)
        chips = xed.make_devices()
        data = random_line(rng, xed)
        xed.write_line(chips, 0, 0, 0, data)
        for chip_idx in (0, 2):
            positions = []
            for p in (a, b):
                if p < 128:
                    positions.append((p % 8, p // 8))
                else:
                    positions.append((p - 128, xed.rank.device.data_bits_per_pin_per_row))
            flip_storage_bits(chips[chip_idx], 0, 0, positions)
        result = xed.read_line(chips, 0, 0, 0)
        assert not result.believed_good

    def test_flagged_parity_chip_is_benign(self, xed, rng):
        a, b = force_detectable_word(xed.code, rng)
        chips = xed.make_devices()
        data = random_line(rng, xed)
        xed.write_line(chips, 0, 0, 0, data)
        positions = []
        for p in (a, b):
            if p < 128:
                positions.append((p % 8, p // 8))
            else:
                positions.append((p - 128, xed.rank.device.data_bits_per_pin_per_row))
        flip_storage_bits(chips[4], 0, 0, positions)
        result = xed.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    def test_silent_miscorrection_poisons_reconstruction(self, xed):
        """Miscorrected chip + flagged chip -> wrong rebuilt data (SDC)."""
        rng = np.random.default_rng(1)
        a, b = force_detectable_word(xed.code, rng)
        # find a miscorrecting pair instead
        from repro.codes import DecodeStatus

        cw = xed.code.encode(np.zeros(128, dtype=np.uint8))
        mis_pair = None
        for x in range(0, 50):
            word = cw.copy()
            word[x] ^= 1
            word[x + 60] ^= 1
            result = xed.code.decode(word)
            if result.status is DecodeStatus.CORRECTED and np.any(result.data):
                mis_pair = (x, x + 60)
                break
        assert mis_pair is not None
        chips = xed.make_devices()
        data = random_line(rng, xed)
        xed.write_line(chips, 0, 0, 0, data)

        def to_storage(p):
            if p < 128:
                return (p % 8, p // 8)
            return (p - 128, xed.rank.device.data_bits_per_pin_per_row)

        flip_storage_bits(chips[0], 0, 0, [to_storage(a), to_storage(b)])  # flagged
        flip_storage_bits(chips[1], 0, 0, [to_storage(mis_pair[0]), to_storage(mis_pair[1])])
        result = xed.read_line(chips, 0, 0, 0)
        assert result.believed_good  # it thinks the rebuild worked
        assert not np.array_equal(result.data, data)  # but the data is wrong
