"""Property-based tests over the scheme datapaths (hypothesis).

Invariants every ECC scheme must hold regardless of data, location or
injected damage:

* clean round-trip: what you write is what you read, anywhere;
* within-capability injections are transparent (correct data, believed
  good);
* a protected scheme never returns wrong data while claiming zero
  corrections (a wrong answer requires either a correction attempt or a
  fault pattern beyond capability).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes import ConventionalIecc, Duo, PairScheme, Xed

SCHEMES = {
    "iecc": ConventionalIecc,
    "xed": Xed,
    "duo": Duo,
    "pair": PairScheme,
}

coords = st.tuples(
    st.integers(0, 3),  # bank (small subset)
    st.integers(0, 500),  # row
    st.integers(0, 479),  # col
)


@st.composite
def line_data(draw, scheme):
    seed = draw(st.integers(0, 2**31 - 1))
    return np.random.default_rng(seed).integers(0, 2, scheme.line_shape, dtype=np.uint8)


class TestCleanRoundtrip:
    @pytest.mark.parametrize("name", list(SCHEMES))
    @given(coord=coords, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_write_read_identity(self, name, coord, seed):
        scheme = SCHEMES[name]()
        chips = scheme.make_devices()
        bank, row, col = coord
        data = np.random.default_rng(seed).integers(
            0, 2, scheme.line_shape, dtype=np.uint8
        )
        scheme.write_line(chips, bank, row, col, data)
        result = scheme.read_line(chips, bank, row, col)
        assert result.believed_good
        assert result.corrections == 0
        assert np.array_equal(result.data, data)


class TestWithinCapabilityInjection:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_errors=st.integers(1, 8),
        pin=st.integers(0, 7),
    )
    @settings(max_examples=25, deadline=None)
    def test_pair_corrects_any_injection_within_t(self, seed, n_errors, pin):
        rng = np.random.default_rng(seed)
        scheme = PairScheme()
        chips = scheme.make_devices()
        data = rng.integers(0, 2, scheme.line_shape, dtype=np.uint8)
        scheme.write_line(chips, 0, 0, 0, data)
        # corrupt n distinct symbols of one pin codeword (segment 0)
        symbols = rng.choice(240, size=n_errors, replace=False)
        view = chips[0].row_view(0, 0)
        for sym in symbols:
            bit = int(sym) * 8 + int(rng.integers(8))
            view[pin, bit] ^= 1
        result = scheme.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)
        assert result.corrections == n_errors

    @given(seed=st.integers(0, 2**31 - 1), n_errors=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_duo_corrects_any_injection_within_t(self, seed, n_errors):
        rng = np.random.default_rng(seed)
        scheme = Duo()
        chips = scheme.make_devices()
        data = rng.integers(0, 2, scheme.line_shape, dtype=np.uint8)
        scheme.write_line(chips, 0, 0, 0, data)
        # n distinct beat symbols across the 4 data chips
        picks = rng.choice(4 * 16, size=n_errors, replace=False)
        for p in picks:
            chip, beat = int(p) // 16, int(p) % 16
            view = chips[chip].row_view(0, 0)
            view[int(rng.integers(8)), beat] ^= 1
        result = scheme.read_line(chips, 0, 0, 0)
        assert result.believed_good
        assert np.array_equal(result.data, data)

    @given(seed=st.integers(0, 2**31 - 1), chip=st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_single_cell_always_transparent(self, seed, chip):
        """One weak cell anywhere is invisible through every scheme."""
        rng = np.random.default_rng(seed)
        for name, factory in SCHEMES.items():
            scheme = factory()
            chips = scheme.make_devices()
            data = rng.integers(0, 2, scheme.line_shape, dtype=np.uint8)
            scheme.write_line(chips, 0, 0, 0, data)
            pin = int(rng.integers(scheme.rank.device.pins))
            beat = int(rng.integers(16))
            chips[chip].row_view(0, 0)[pin, beat] ^= 1
            result = scheme.read_line(chips, 0, 0, 0)
            assert result.believed_good, name
            assert np.array_equal(result.data, data), name


class TestNoSilentZeroCorrectionLies:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_pair_never_wrong_without_correcting(self, seed):
        """If PAIR touched nothing and flagged nothing, the data is right."""
        rng = np.random.default_rng(seed)
        scheme = PairScheme()
        chips = scheme.make_devices()
        data = rng.integers(0, 2, scheme.line_shape, dtype=np.uint8)
        scheme.write_line(chips, 0, 0, 0, data)
        # arbitrary damage: up to 12 random cells on one pin
        n = int(rng.integers(0, 13))
        view = chips[0].row_view(0, 0)
        for _ in range(n):
            view[0, int(rng.integers(1920))] ^= 1
        result = scheme.read_line(chips, 0, 0, 0)
        if result.believed_good and result.corrections == 0:
            assert np.array_equal(result.data, data)
