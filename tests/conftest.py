"""Shared session-scoped fixtures: cached schemes and analytic models.

The expensive objects in this suite are (a) scheme stacks - each pulls in
RS/Hamming code objects and their GF tables - and (b) semi-analytic models,
whose construction runs hundreds of decoder-in-the-loop samples.  Several
integration tests rebuild identical ones, which is pure wall-clock waste
and (for the models) the main source of multi-second tests.

Both are safe to share: schemes are stateless across reads (device state
lives in the arrays handed to ``read_line``, not in the scheme), and a
built model is immutable.  Tests that mutate either must construct their
own instead of using these fixtures.
"""

import pytest


@pytest.fixture(scope="session")
def get_scheme():
    """Session-cached scheme instances, keyed by their zero-arg factory."""
    cache = {}

    def get(factory):
        got = cache.get(factory)
        if got is None:
            got = cache[factory] = factory()
        return got

    return get


@pytest.fixture(scope="session")
def get_model(get_scheme):
    """Session-cached ``build_model`` results keyed by (name, samples, seed).

    The key assumes one scheme instance per name within a session - which
    :func:`get_scheme` guarantees for everything routed through it.
    """
    from repro.reliability import build_model

    cache = {}

    def get(scheme, samples, seed=0):
        key = (scheme.name, samples, seed)
        got = cache.get(key)
        if got is None:
            got = cache[key] = build_model(scheme, samples=samples, seed=seed)
        return got

    return get
