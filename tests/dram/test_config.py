"""Tests for device/rank configuration and derived geometry."""

import pytest

from repro.dram import (
    DDR5_X4,
    DDR5_X8,
    DDR5_X16,
    RANK_X4_10CHIP,
    RANK_X8_4CHIP,
    RANK_X8_5CHIP,
    DeviceConfig,
    RankConfig,
)


class TestDeviceConfig:
    def test_default_geometry(self):
        d = DDR5_X8
        assert d.access_data_bits == 128
        assert d.columns_per_row == 480
        assert d.row_data_bits == 7680 * 8
        assert d.spare_overhead == pytest.approx(512 / 7680)

    def test_presets_line_up(self):
        assert DDR5_X4.pins == 4
        assert DDR5_X16.pins == 16
        for preset in (DDR5_X4, DDR5_X8, DDR5_X16):
            assert preset.access_data_bits == preset.pins * preset.burst_length

    def test_data_bits_total(self):
        d = DDR5_X8
        assert d.data_bits == d.row_data_bits * d.rows_per_bank * d.banks

    def test_row_total_includes_spare(self):
        d = DDR5_X8
        assert d.row_total_bits == (7680 + 512) * 8

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceConfig(pins=0)
        with pytest.raises(ValueError):
            DeviceConfig(data_bits_per_pin_per_row=7681)  # not / burst_length

    def test_scaled_override(self):
        d = DDR5_X8.scaled(banks=8)
        assert d.banks == 8
        assert d.pins == DDR5_X8.pins


class TestRankConfig:
    def test_subchannel_carries_64b_line(self):
        assert RANK_X8_5CHIP.access_data_bits == 512
        assert RANK_X4_10CHIP.access_data_bits == 512
        assert RANK_X8_4CHIP.access_data_bits == 512

    def test_chip_counts(self):
        assert RANK_X8_5CHIP.chips == 5
        assert RANK_X4_10CHIP.chips == 10
        assert RANK_X8_4CHIP.chips == 4

    def test_total_bits_include_ecc_chips(self):
        assert RANK_X8_5CHIP.access_total_bits == 128 * 5
