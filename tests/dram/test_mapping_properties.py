"""Property-based tests for the codeword-geometry layouts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import BeatAlignedLayout, DDR5_X4, DDR5_X8, DDR5_X16, PinAlignedLayout

DEVICES = {d.name: d for d in (DDR5_X4, DDR5_X8, DDR5_X16)}


def fresh_row(device):
    total = device.data_bits_per_pin_per_row + device.spare_bits_per_pin_per_row
    return np.zeros((device.pins, total), dtype=np.uint8)


class TestLayoutProperties:
    @given(
        device=st.sampled_from(sorted(DEVICES)),
        cw_seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_pin_gather_scatter_roundtrip(self, device, cw_seed):
        dev = DEVICES[device]
        layout = PinAlignedLayout(dev)
        rng = np.random.default_rng(cw_seed)
        cw = int(rng.integers(layout.num_codewords))
        row = fresh_row(dev)
        symbols = rng.integers(0, 256, layout.n)
        layout.scatter(row, cw, symbols)
        assert np.array_equal(layout.gather(row, cw), symbols)

    @given(
        device=st.sampled_from(sorted(DEVICES)),
        col_seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_access_covered_by_codewords(self, device, col_seed):
        """Any column access's data bits belong to the reported codewords."""
        dev = DEVICES[device]
        layout = PinAlignedLayout(dev)
        rng = np.random.default_rng(col_seed)
        col = int(rng.integers(dev.columns_per_row))
        row = fresh_row(dev)
        bl = dev.burst_length
        row[:, col * bl : (col + 1) * bl] = 1
        touched = sum(
            int(np.count_nonzero(layout.gather(row, cw)))
            for cw in layout.codewords_of_access(col)
        )
        # every set bit is inside exactly the reported codewords
        total_set_symbols = touched
        assert total_set_symbols == dev.pins * (bl // 8)

    @given(col=st.integers(0, 479))
    @settings(max_examples=40, deadline=None)
    def test_data_symbol_range_is_consistent(self, col):
        layout = PinAlignedLayout(DDR5_X8)
        for cw in layout.codewords_of_access(col):
            lo, hi = layout.data_symbol_range_of_access(cw, col)
            assert 0 <= lo < hi <= layout.k
            assert (hi - lo) * layout.symbol_bits == DDR5_X8.burst_length

    @given(col=st.integers(0, 479))
    @settings(max_examples=40, deadline=None)
    def test_beat_layout_range_is_consistent(self, col):
        layout = BeatAlignedLayout(DDR5_X8)
        (cw,) = layout.codewords_of_access(col)
        lo, hi = layout.data_symbol_range_of_access(cw, col)
        assert 0 <= lo < hi <= layout.k
        assert (hi - lo) * layout.symbol_bits == DDR5_X8.access_data_bits

    @pytest.mark.parametrize("device", list(DEVICES.values()), ids=lambda d: d.name)
    def test_layouts_partition_the_row(self, device):
        """Every data bit of a row belongs to exactly one codeword."""
        layout = PinAlignedLayout(device)
        row = fresh_row(device)
        for cw in range(layout.num_codewords):
            layout.scatter(row, cw, np.full(layout.n, 255, dtype=np.int64))
        # all data and used-parity bits are now set exactly once
        data_region = row[:, : device.data_bits_per_pin_per_row]
        assert data_region.all()
