"""Tests for address decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import AddressMapper, DramAddress, Interleave, RANK_X8_5CHIP


@pytest.fixture(params=[Interleave.ROW_LOCAL, Interleave.BANK_ROTATE])
def mapper(request):
    return AddressMapper(RANK_X8_5CHIP, interleave=request.param)


class TestMapper:
    def test_capacity(self):
        m = AddressMapper(RANK_X8_5CHIP)
        d = RANK_X8_5CHIP.device
        assert m.capacity_lines == d.banks * d.rows_per_bank * d.columns_per_row

    def test_bounds(self, mapper):
        with pytest.raises(ValueError):
            mapper.decompose(-1)
        with pytest.raises(ValueError):
            mapper.decompose(mapper.capacity_lines)

    @given(st.integers(0, 10**9))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, line):
        for il in Interleave:
            m = AddressMapper(RANK_X8_5CHIP, interleave=il)
            line_mod = line % m.capacity_lines
            addr = m.decompose(line_mod)
            assert 0 <= addr.bank < m.banks
            assert 0 <= addr.row < m.rows
            assert 0 <= addr.col < m.cols
            assert m.compose(addr) == line_mod

    def test_row_local_keeps_rows_together(self):
        m = AddressMapper(RANK_X8_5CHIP, interleave=Interleave.ROW_LOCAL)
        a0 = m.decompose(0)
        a1 = m.decompose(1)
        assert a0.same_row(a1)
        assert a1.col == a0.col + 1

    def test_bank_rotate_spreads_banks(self):
        m = AddressMapper(RANK_X8_5CHIP, interleave=Interleave.BANK_ROTATE)
        banks = {m.decompose(i).bank for i in range(m.banks)}
        assert len(banks) == m.banks

    def test_same_row_predicate(self):
        a = DramAddress(1, 2, 3)
        assert a.same_row(DramAddress(1, 2, 9))
        assert not a.same_row(DramAddress(1, 3, 3))
        assert not a.same_row(DramAddress(0, 2, 3))
