"""Tests for the DRAM protocol checker - and of the controller through it."""

import pytest

from repro.dram import (
    AddressMapper,
    Command,
    DDR5_4800,
    IssuedCommand,
    ProtocolChecker,
    RANK_X8_5CHIP,
    SchemeTimingOverlay,
)
from repro.perf import ControllerConfig, MemoryController, TraceConfig, generate_trace
from repro.schemes import Duo, PairScheme, Xed


def cmd(command, cycle, bank=0, row=0, col=0):
    return IssuedCommand(command, cycle, bank, row, col)


@pytest.fixture
def checker():
    return ProtocolChecker(DDR5_4800)


class TestRules:
    def test_legal_sequence_passes(self, checker):
        t = DDR5_4800
        stream = [
            cmd(Command.ACT, 0, row=5),
            cmd(Command.RD, t.tRCD, row=5, col=0),
            cmd(Command.RD, t.tRCD + t.tCCD, row=5, col=1),
            cmd(Command.PRE, t.tRAS, row=5),
            cmd(Command.ACT, t.tRAS + t.tRP, row=6),
        ]
        assert checker.check(stream) == []

    def test_trcd_violation(self, checker):
        stream = [cmd(Command.ACT, 0, row=5), cmd(Command.RD, 10, row=5)]
        rules = [v.rule for v in checker.check(stream)]
        assert "tRCD" in rules

    def test_trp_violation(self, checker):
        t = DDR5_4800
        stream = [
            cmd(Command.ACT, 0, row=5),
            cmd(Command.PRE, t.tRAS, row=5),
            cmd(Command.ACT, t.tRAS + 3, row=6),
        ]
        rules = [v.rule for v in checker.check(stream)]
        assert "tRP" in rules

    def test_tras_violation(self, checker):
        stream = [cmd(Command.ACT, 0, row=5), cmd(Command.PRE, 20, row=5)]
        rules = [v.rule for v in checker.check(stream)]
        assert "tRAS" in rules

    def test_cas_to_wrong_row(self, checker):
        t = DDR5_4800
        stream = [cmd(Command.ACT, 0, row=5), cmd(Command.RD, t.tRCD, row=6)]
        rules = [v.rule for v in checker.check(stream)]
        assert "CAS-wrong-row" in rules

    def test_cas_on_closed_bank(self, checker):
        rules = [v.rule for v in checker.check([cmd(Command.RD, 100, row=5)])]
        assert "CAS-on-closed" in rules

    def test_act_on_open_bank(self, checker):
        t = DDR5_4800
        stream = [
            cmd(Command.ACT, 0, row=5),
            cmd(Command.ACT, t.tRC, row=6),
        ]
        rules = [v.rule for v in checker.check(stream)]
        assert "ACT-on-open" in rules

    def test_tccd_violation(self, checker):
        t = DDR5_4800
        stream = [
            cmd(Command.ACT, 0, row=5),
            cmd(Command.RD, t.tRCD, row=5, col=0),
            cmd(Command.RD, t.tRCD + 2, row=5, col=1),
        ]
        rules = [v.rule for v in checker.check(stream)]
        assert "tCCD" in rules

    def test_banks_independent(self, checker):
        t = DDR5_4800
        stream = [
            cmd(Command.ACT, 0, bank=0, row=5),
            cmd(Command.ACT, 1, bank=1, row=9),
            cmd(Command.RD, t.tRCD + 1, bank=1, row=9),
        ]
        assert checker.check(stream) == []


class TestControllerCompliance:
    """The real point: every simulated workload must be protocol-clean."""

    @pytest.mark.parametrize(
        "overlay",
        [SchemeTimingOverlay(), PairScheme().timing_overlay,
         Xed().timing_overlay, Duo().timing_overlay],
        ids=["none", "pair", "xed", "duo"],
    )
    def test_simulated_streams_are_legal(self, overlay, checker):
        mapper = AddressMapper(RANK_X8_5CHIP)
        trace = generate_trace(
            TraceConfig(requests=2500, arrival_rate=0.08, write_fraction=0.4,
                        masked_write_fraction=0.3, row_locality=0.5, seed=9),
            mapper,
        )
        controller = MemoryController(
            ControllerConfig(record_commands=True), overlay
        )
        controller.run(trace)
        violations = checker.check(controller.commands)
        assert violations == [], violations[:5]
