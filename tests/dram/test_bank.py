"""Tests for the bank timing state machine."""

import pytest

from repro.dram import BankTimingModel, DDR5_4800, SchemeTimingOverlay

NONE = SchemeTimingOverlay()


@pytest.fixture
def bank():
    return BankTimingModel(0, DDR5_4800)


class TestReads:
    def test_cold_read_latency(self, bank):
        t = DDR5_4800
        plan = bank.issue_read(0.0, row=5, col=0, overlay=NONE, bus_free=0.0)
        assert plan.data_start == t.tRCD + t.cl
        assert plan.data_end == plan.data_start + t.tBURST
        assert bank.row_misses == 1

    def test_row_hit_is_faster(self, bank):
        first = bank.issue_read(0.0, 5, 0, NONE, 0.0)
        second = bank.issue_read(first.data_end, 5, 1, NONE, first.data_end)
        assert bank.row_hits == 1
        # hit: no ACT, just CAS latency from issue
        assert second.data_start - first.data_end <= DDR5_4800.cl + DDR5_4800.tBURST

    def test_row_conflict_pays_precharge(self, bank):
        t = DDR5_4800
        first = bank.issue_read(0.0, 5, 0, NONE, 0.0)
        conflict = bank.issue_read(first.data_end, 6, 0, NONE, first.data_end)
        assert bank.row_conflicts == 1
        # must wait tRAS before PRE, then tRP + tRCD + CL
        assert conflict.data_start >= t.tRAS + t.tRP + t.tRCD + t.cl

    def test_extra_read_latency_overlay(self, bank):
        slow = SchemeTimingOverlay(read_latency_cycles=6)
        plan = bank.issue_read(0.0, 5, 0, slow, 0.0)
        base = BankTimingModel(1, DDR5_4800).issue_read(0.0, 5, 0, NONE, 0.0)
        assert plan.data_start == base.data_start + 6

    def test_burst_stretch_occupies_bus_longer(self, bank):
        stretched = SchemeTimingOverlay(burst_stretch=17 / 16)
        plan = bank.issue_read(0.0, 5, 0, stretched, 0.0)
        assert plan.data_end - plan.data_start == pytest.approx(8 * 17 / 16)

    def test_bus_contention_delays_data(self, bank):
        plan = bank.issue_read(0.0, 5, 0, NONE, bus_free=10_000.0)
        assert plan.data_start == 10_000.0

    def test_consecutive_reads_respect_tccd(self, bank):
        p1 = bank.issue_read(0.0, 5, 0, NONE, 0.0)
        p2 = bank.issue_read(0.0, 5, 1, NONE, 0.0)
        assert p2.cas_cycle - p1.cas_cycle >= DDR5_4800.tCCD


class TestWrites:
    def test_write_uses_cwl(self, bank):
        t = DDR5_4800
        plan = bank.issue_write(0.0, 5, 0, NONE, 0.0, pays_rmw=False)
        assert plan.data_start == t.tRCD + t.cwl

    def test_rmw_extends_bank_occupancy(self):
        t = DDR5_4800
        overlay = SchemeTimingOverlay(write_rmw_cycles=20)
        plain = BankTimingModel(0, t)
        rmw = BankTimingModel(1, t)
        plain.issue_write(0.0, 5, 0, overlay, 0.0, pays_rmw=False)
        rmw.issue_write(0.0, 5, 0, overlay, 0.0, pays_rmw=True)
        assert rmw.next_cas == plain.next_cas + 20
        assert rmw.next_pre == plain.next_pre + 20

    def test_write_recovery_delays_precharge(self, bank):
        t = DDR5_4800
        plan = bank.issue_write(0.0, 5, 0, NONE, 0.0, pays_rmw=False)
        assert bank.next_pre >= plan.data_end + t.tWR


class TestOverlayHelpers:
    def test_write_pays_rmw_logic(self):
        masked_only = SchemeTimingOverlay(write_rmw_cycles=10)
        assert masked_only.write_pays_rmw(True)
        assert not masked_only.write_pays_rmw(False)
        always = SchemeTimingOverlay(write_rmw_cycles=10, rmw_on_all_writes=True)
        assert always.write_pays_rmw(False)
        none = SchemeTimingOverlay()
        assert not none.write_pays_rmw(True)

    def test_timing_ns_conversion(self):
        assert DDR5_4800.ns(10) == pytest.approx(4.17)


class TestGenerationPresets:
    def test_ddr4_preset_consistency(self):
        from repro.dram import DDR4_3200

        t = DDR4_3200
        assert t.tRC >= t.tRAS + t.tRP
        assert t.tBURST == 4  # BL8 at DDR
        # absolute first-access latency is similar across generations
        ddr4_ns = t.ns(t.tRCD + t.cl + t.tBURST)
        ddr5_ns = DDR5_4800.ns(DDR5_4800.tRCD + DDR5_4800.cl + DDR5_4800.tBURST)
        assert ddr4_ns == pytest.approx(ddr5_ns, rel=0.25)

    def test_controller_runs_on_ddr4(self):
        from repro.dram import DDR4_3200
        from repro.perf import ControllerConfig, MemoryController
        from repro.perf.trace import Request
        from repro.dram import DramAddress, SchemeTimingOverlay

        controller = MemoryController(
            ControllerConfig(timing=DDR4_3200), SchemeTimingOverlay()
        )
        served, _ = controller.run(
            [Request(0.0, DramAddress(0, 5, c)) for c in range(4)]
        )
        assert len(served) == 4
        assert served[0].latency == DDR4_3200.tRCD + DDR4_3200.cl + DDR4_3200.tBURST
