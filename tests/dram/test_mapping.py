"""Tests for codeword-to-geometry layouts."""

import numpy as np
import pytest

from repro.dram import (
    DDR5_X4,
    DDR5_X8,
    DDR5_X16,
    BeatAlignedLayout,
    PinAlignedLayout,
    SecWordLayout,
)


def fresh_row(device):
    total = device.data_bits_per_pin_per_row + device.spare_bits_per_pin_per_row
    return np.zeros((device.pins, total), dtype=np.uint8)


class TestPinAlignedLayout:
    def test_default_tiling(self):
        layout = PinAlignedLayout(DDR5_X8)
        assert layout.segments_per_pin == 4
        assert layout.num_codewords == 32
        assert layout.n == 256

    def test_no_overlap(self):
        PinAlignedLayout(DDR5_X8).check()

    def test_codeword_confined_to_one_pin(self):
        layout = PinAlignedLayout(DDR5_X8)
        for cw in range(layout.num_codewords):
            pins = np.unique(layout._pin_index[cw])
            assert pins.size == 1

    def test_gather_scatter_roundtrip(self):
        rng = np.random.default_rng(0)
        layout = PinAlignedLayout(DDR5_X8)
        row = fresh_row(DDR5_X8)
        symbols = rng.integers(0, 256, layout.n)
        layout.scatter(row, 5, symbols)
        assert np.array_equal(layout.gather(row, 5), symbols)

    def test_scatter_does_not_touch_other_codewords(self):
        rng = np.random.default_rng(1)
        layout = PinAlignedLayout(DDR5_X8)
        row = fresh_row(DDR5_X8)
        layout.scatter(row, 3, rng.integers(0, 256, layout.n))
        for cw in range(layout.num_codewords):
            if cw != 3:
                assert not layout.gather(row, cw).any()

    def test_codewords_of_access_one_per_pin(self):
        layout = PinAlignedLayout(DDR5_X8)
        cws = layout.codewords_of_access(0)
        assert len(cws) == 8
        assert len(set(cws)) == 8
        # col 120 starts segment 1 (120 * 16 / 1920)
        assert layout.segment_of_col(119) == 0
        assert layout.segment_of_col(120) == 1

    def test_data_symbol_range(self):
        layout = PinAlignedLayout(DDR5_X8)
        cw = layout.codewords_of_access(0)[0]
        lo, hi = layout.data_symbol_range_of_access(cw, 0)
        assert (lo, hi) == (0, 2)  # 16 bits = 2 symbols per pin per access
        cw = layout.codewords_of_access(121)[0]
        lo, hi = layout.data_symbol_range_of_access(cw, 121)
        assert (lo, hi) == (2, 4)

    def test_access_bits_map_to_access_window(self):
        """The symbols in the access range must be exactly the window bits."""
        rng = np.random.default_rng(2)
        device = DDR5_X8
        layout = PinAlignedLayout(device)
        row = fresh_row(device)
        col = 7
        window = rng.integers(0, 2, (device.pins, device.burst_length)).astype(np.uint8)
        row[:, col * 16 : (col + 1) * 16] = window
        for pin, cw in enumerate(layout.codewords_of_access(col)):
            lo, hi = layout.data_symbol_range_of_access(cw, col)
            syms = layout.gather(row, cw)[lo:hi]
            shifts = np.arange(8)
            bits = ((syms[:, None] >> shifts) & 1).reshape(-1)
            assert np.array_equal(bits, window[pin])

    def test_x4_and_x16_tile(self):
        for device in (DDR5_X4, DDR5_X16):
            layout = PinAlignedLayout(device)
            layout.check()
            assert layout.num_codewords == device.pins * layout.segments_per_pin

    def test_rejects_untileable_geometry(self):
        device = DDR5_X8.scaled(data_bits_per_pin_per_row=7696)
        with pytest.raises(ValueError):
            PinAlignedLayout(device)

    def test_rejects_parity_overflow(self):
        device = DDR5_X8.scaled(spare_bits_per_pin_per_row=256)
        with pytest.raises(ValueError):
            PinAlignedLayout(device)


class TestBeatAlignedLayout:
    def test_equal_overhead_with_pin_layout(self):
        pin = PinAlignedLayout(DDR5_X8)
        beat = BeatAlignedLayout(DDR5_X8)
        assert pin.num_codewords == beat.segments
        assert pin.n == beat.n

    def test_no_overlap(self):
        BeatAlignedLayout(DDR5_X8).check()

    def test_symbols_span_pins(self):
        layout = BeatAlignedLayout(DDR5_X8)
        # every symbol of codeword 0 mixes all 8 pins
        for sym in range(4):
            pins = np.unique(layout._pin_index[0, sym])
            assert pins.size == 8

    def test_gather_scatter_roundtrip(self):
        rng = np.random.default_rng(3)
        layout = BeatAlignedLayout(DDR5_X8)
        row = fresh_row(DDR5_X8)
        symbols = rng.integers(0, 256, layout.n)
        layout.scatter(row, 2, symbols)
        assert np.array_equal(layout.gather(row, 2), symbols)

    def test_one_codeword_per_access(self):
        layout = BeatAlignedLayout(DDR5_X8)
        assert len(layout.codewords_of_access(0)) == 1
        lo, hi = layout.data_symbol_range_of_access(0, 0)
        assert hi - lo == 16  # 128 access bits = 16 symbols

    def test_pin_burst_smears_across_symbols(self):
        """The fault-geometry contrast behind ablation F8."""
        device = DDR5_X8
        pin_layout = PinAlignedLayout(device)
        beat_layout = BeatAlignedLayout(device)
        row = fresh_row(device)
        row[3, 0:8] = 1  # 8-beat burst on pin 3 in access 0
        pin_hits = sum(
            np.count_nonzero(pin_layout.gather(row, cw))
            for cw in pin_layout.codewords_of_access(0)
        )
        beat_hits = np.count_nonzero(beat_layout.gather(row, 0))
        assert pin_hits == 1  # one symbol of one pin codeword
        assert beat_hits == 8  # eight symbols of the beat codeword


class TestSecWordLayout:
    def test_dimensions(self):
        layout = SecWordLayout(DDR5_X8)
        assert layout.n == 136
        assert layout.k == 128

    def test_gather_scatter_roundtrip(self):
        rng = np.random.default_rng(4)
        layout = SecWordLayout(DDR5_X8)
        row = fresh_row(DDR5_X8)
        word = rng.integers(0, 2, 136).astype(np.uint8)
        layout.scatter(row, 9, word)
        assert np.array_equal(layout.gather(row, 9), word)

    def test_data_is_beat_major_window(self):
        layout = SecWordLayout(DDR5_X8)
        row = fresh_row(DDR5_X8)
        row[2, 16] = 1  # pin 2, first beat of col 1
        word = layout.gather(row, 1)
        assert word[2] == 1  # beat 0 holds pins 0..7 in order

    def test_distinct_cols_use_distinct_parity(self):
        rng = np.random.default_rng(5)
        layout = SecWordLayout(DDR5_X8)
        row = fresh_row(DDR5_X8)
        w1 = rng.integers(0, 2, 136).astype(np.uint8)
        w2 = rng.integers(0, 2, 136).astype(np.uint8)
        layout.scatter(row, 0, w1)
        layout.scatter(row, 1, w2)
        assert np.array_equal(layout.gather(row, 0), w1)
        assert np.array_equal(layout.gather(row, 1), w2)

    def test_rejects_spare_overflow(self):
        device = DDR5_X8.scaled(spare_bits_per_pin_per_row=32)
        with pytest.raises(ValueError):
            SecWordLayout(device)
