"""Tests for the functional DRAM device model."""

import numpy as np
import pytest

from repro.dram import DDR5_X8, DramDevice
from repro.faults import FaultOverlay, FaultRates


class TestStorage:
    def test_rows_allocated_lazily(self):
        dev = DramDevice(DDR5_X8)
        assert dev.touched_rows == 0
        dev.row_view(0, 0)
        assert dev.touched_rows == 1

    def test_row_view_is_mutable_persistent(self):
        dev = DramDevice(DDR5_X8)
        dev.row_view(1, 2)[3, 4] = 1
        assert dev.row_view(1, 2)[3, 4] == 1

    def test_bounds_checks(self):
        dev = DramDevice(DDR5_X8)
        with pytest.raises(ValueError):
            dev.row_view(DDR5_X8.banks, 0)
        with pytest.raises(ValueError):
            dev.row_view(0, DDR5_X8.rows_per_bank)
        with pytest.raises(ValueError):
            dev.read_access(0, 0, DDR5_X8.columns_per_row)

    def test_access_roundtrip(self):
        rng = np.random.default_rng(0)
        dev = DramDevice(DDR5_X8)
        bits = rng.integers(0, 2, (8, 16)).astype(np.uint8)
        dev.write_access(0, 7, 33, bits)
        assert np.array_equal(dev.read_access(0, 7, 33), bits)

    def test_write_access_shape_validation(self):
        dev = DramDevice(DDR5_X8)
        with pytest.raises(ValueError):
            dev.write_access(0, 0, 0, np.zeros((8, 15), dtype=np.uint8))


class TestFaultOverlay:
    def test_clean_overlay_changes_nothing(self):
        rates = FaultRates(
            single_cell_ber=0.0, row_faults_per_device=0, column_faults_per_device=0,
            pin_faults_per_device=0, mat_faults_per_device=0,
        )
        dev = DramDevice(DDR5_X8, FaultOverlay(DDR5_X8, rates, seed=1))
        assert not dev.row_with_faults(0, 0).any()

    def test_weak_cells_flip_reads_not_storage(self):
        rates = FaultRates(
            single_cell_ber=0.01, row_faults_per_device=0, column_faults_per_device=0,
            pin_faults_per_device=0, mat_faults_per_device=0,
        )
        dev = DramDevice(DDR5_X8, FaultOverlay(DDR5_X8, rates, seed=2))
        faulty = dev.row_with_faults(0, 5)
        assert faulty.any()  # 65536 bits at 1% BER
        assert not dev.row_view(0, 5).any()  # pristine storage untouched

    def test_faults_are_persistent(self):
        rates = FaultRates(single_cell_ber=0.01)
        dev = DramDevice(DDR5_X8, FaultOverlay(DDR5_X8, rates, seed=3))
        first = dev.row_with_faults(2, 9)
        second = dev.row_with_faults(2, 9)
        assert np.array_equal(first, second)

    def test_faults_xor_with_data(self):
        rng = np.random.default_rng(4)
        rates = FaultRates(single_cell_ber=0.02)
        overlay = FaultOverlay(DDR5_X8, rates, seed=5)
        dev = DramDevice(DDR5_X8, overlay)
        data = rng.integers(0, 2, (8, 16)).astype(np.uint8)
        dev.write_access(0, 1, 0, data)
        mask = overlay.mask_for_row(0, 1, dev.row_with_faults(0, 1).shape)
        window = mask[:, 0:16]
        assert np.array_equal(dev.read_access(0, 1, 0), data ^ window)
